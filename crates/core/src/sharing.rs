//! The threaded sharing runtime — Algorithm 2 with real threads.
//!
//! This is the wall-clock counterpart of the deterministic
//! [`crate::runner`]: each job runs on its own OS thread and calls
//! [`SharingRuntime::sharing`] in place of the engine's native load (the
//! paper's `P_i_j ← Sharing(G, Load())`). The runtime:
//!
//! * loads every partition **once** per sweep into a shared buffer;
//! * *resumes* jobs that need the loaded partition and *suspends* the rest
//!   (Algorithm 2 lines 4–7) by blocking them on a condvar;
//! * paces jobs through the partition's chunks so their traversals stay
//!   within a bounded window of each other (the fine-grained
//!   synchronization of §3.4.2, realized as a progress window rather than
//!   CPU-slice accounting, which an OS scheduler does not expose);
//! * recomputes the §4 loading order between sweeps.
//!
//! With intra-job chunk fan-out (`exec_parallel`), a job's thread still
//! calls [`SharingRuntime::pace_chunk`] per chunk index in ascending
//! order — the pacing barrier is per *index* — but chunks already
//! admitted to the window may be in flight on worker threads while the
//! job paces the next index. The window therefore bounds how many chunk
//! indices a job has *claimed*, which is also the bound on its in-flight
//! fan-out.

use crate::global_table::GlobalTable;
use crate::job::JobId;
use crate::scheduler::{loading_order, SchedulingPolicy};
use crate::source::PartitionSource;
use graphm_graph::Edge;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// A readahead callback: called (under the runtime lock, so it must only
/// enqueue) with the ids of the partitions that will be loaded next, each
/// time the runtime advances to a new partition. Disk-backed sources hand
/// this to a `Prefetcher` thread that issues `madvise(MADV_WILLNEED)`
/// ahead of the sweep (hiding cold-store latency under compute, à la
/// GraphD's pipelined loading).
pub type PrefetchHook = Arc<dyn Fn(&[usize]) + Send + Sync>;

/// A shared, loaded partition handed to a job by `Sharing()`.
pub struct SharedPartition {
    /// Partition id.
    pub pid: usize,
    /// The one shared copy of the partition's edges (empty when the load
    /// failed — see [`SharedPartition::error`]).
    pub edges: Arc<Vec<Edge>>,
    /// Sweep number this load belongs to.
    pub sweep: u64,
    /// Set when the shared load failed (injected or real I/O error): the
    /// job must still call [`SharingRuntime::barrier`] for `pid` (so
    /// peers advance) and then retire as failed. Every job sharing this
    /// load observes the same error.
    pub error: Option<String>,
}

#[derive(Default)]
struct Inner {
    registered: BTreeSet<JobId>,
    /// Jobs participating in the current sweep.
    participants: BTreeSet<JobId>,
    /// Jobs that still have to process the current partition.
    pending: BTreeSet<JobId>,
    current_pid: Option<usize>,
    buffer: Option<Arc<Vec<Edge>>>,
    /// Set when the current partition's shared load failed: every pending
    /// job receives the error via [`SharedPartition::error`] and must
    /// barrier-then-retire. Cleared on every advance.
    buffer_err: Option<String>,
    order: VecDeque<usize>,
    sweep: u64,
    sweep_done: bool,
    /// Whether the source currently holds this runtime's generation pin
    /// ([`PartitionSource::sweep_begin`]): taken when the first sweep of
    /// a busy period starts and released only once no registered job
    /// remains, so generation-rotating sources never flip under an
    /// in-flight *job* — pins are job-scoped, not sweep-scoped.
    source_pinned: bool,
    loads: u64,
    /// Chunk-progress window state for the current partition.
    progress: HashMap<JobId, usize>,
    /// Multiset of `progress` values (count per chunk index). Its first
    /// key is the minimum progress, so pacing is O(log jobs) per chunk
    /// instead of an O(jobs) scan.
    progress_counts: BTreeMap<usize, usize>,
}

impl Inner {
    fn progress_count_add(&mut self, idx: usize) {
        *self.progress_counts.entry(idx).or_insert(0) += 1;
    }

    fn progress_count_remove(&mut self, idx: usize) {
        match self.progress_counts.get_mut(&idx) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.progress_counts.remove(&idx);
            }
            None => debug_assert!(false, "removing an untracked progress value"),
        }
    }

    fn set_progress(&mut self, job: JobId, idx: usize) {
        if let Some(old) = self.progress.insert(job, idx) {
            self.progress_count_remove(old);
        }
        self.progress_count_add(idx);
    }

    fn clear_progress(&mut self, job: JobId) {
        if let Some(old) = self.progress.remove(&job) {
            self.progress_count_remove(old);
        }
    }

    /// Minimum chunk progress among co-processing jobs (`None` when no job
    /// has fetched the current partition yet).
    fn min_progress(&self) -> Option<usize> {
        self.progress_counts.keys().next().copied()
    }
}

/// The runtime object shared by all job threads.
pub struct SharingRuntime {
    source: Arc<dyn PartitionSource>,
    /// Partition → interested-jobs table (§3.3.1).
    pub global: GlobalTable,
    policy: SchedulingPolicy,
    /// Pacing window: a job may process chunk `c` only while `c <
    /// min_progress + window`, bounding concurrent traversal positions
    /// within `window - 1` chunks (2 = lock-step). Values below 2 are
    /// clamped: with `window = 1`, every co-processing job at chunk `c`
    /// would need `c + 1 < c + 1` to advance — a guaranteed deadlock.
    window: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
    /// Optional readahead hook + lookahead depth (how many upcoming
    /// partitions to announce on every advance).
    prefetch: Mutex<Option<(PrefetchHook, usize)>>,
}

impl SharingRuntime {
    /// Creates a runtime over `source` with the given loading-order policy
    /// and chunk-progress window.
    pub fn new(
        source: Arc<dyn PartitionSource>,
        policy: SchedulingPolicy,
        window: usize,
    ) -> Arc<SharingRuntime> {
        let global = GlobalTable::new(source.num_partitions());
        Arc::new(SharingRuntime {
            source,
            global,
            policy,
            window: window.max(2),
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            prefetch: Mutex::new(None),
        })
    }

    /// Installs a readahead hook: on every partition advance the runtime
    /// calls `hook` with (up to) the next `lookahead` partition ids of the
    /// current sweep's loading order. `lookahead` is the *maximum*
    /// announced window — an adaptive consumer (see
    /// `graphm_store::AdaptiveWindow`) advises only its current
    /// feedback-controlled prefix of it.
    pub fn set_prefetch(&self, hook: PrefetchHook, lookahead: usize) {
        *self.prefetch.lock() = Some((hook, lookahead.max(1)));
    }

    /// Number of shared partition loads performed so far.
    pub fn loads(&self) -> u64 {
        self.inner.lock().loads
    }

    /// Registers a job with its initial active partitions. The job joins
    /// from the *next* sweep (a newly submitted job "waits for its active
    /// graph vertices/edges to be loaded into the memory"). Sweeps start
    /// lazily on the first `sharing()` call once no prior sweep is in
    /// flight, so a batch of registrations lands in one sweep.
    pub fn register_job(&self, job: JobId, active_pids: &[usize]) {
        let mut inner = self.inner.lock();
        self.global.set_active_partitions(job, active_pids);
        inner.registered.insert(job);
        self.cv.notify_all();
    }

    /// The `Sharing()` call of Table 1 — blocks until either the next
    /// partition this job must process is loaded (returning it) or the
    /// sweep is over (returning `None`; the job should then run
    /// `end_iteration` and call [`SharingRuntime::end_iteration`]).
    pub fn sharing(&self, job: JobId) -> Option<SharedPartition> {
        let mut inner = self.inner.lock();
        loop {
            if inner.pending.contains(&job) {
                let pid = inner.current_pid.expect("pending implies a current partition");
                let edges = Arc::clone(inner.buffer.as_ref().expect("buffer loaded"));
                inner.set_progress(job, 0);
                return Some(SharedPartition {
                    pid,
                    edges,
                    sweep: inner.sweep,
                    error: inner.buffer_err.clone(),
                });
            }
            if inner.current_pid.is_none() {
                // No partition in flight: either start the next sweep (all
                // previous participants have ended their iterations) or
                // report end-of-sweep to this job.
                if inner.participants.is_empty() && !inner.registered.is_empty() {
                    self.begin_sweep(&mut inner);
                    continue;
                }
                if inner.participants.contains(&job) || !inner.registered.contains(&job) {
                    // This job's sweep is over (or the job is unknown).
                    return None;
                }
                // Registered mid-sweep: the previous sweep just drained but
                // its participants have not all ended their iterations yet.
                // Wait for the next sweep instead of reporting a spurious
                // empty iteration.
            }
            // Suspended: this job does not need the current partition
            // (Algorithm 2 lines 5–7), or is waiting for the next sweep.
            self.cv.wait(&mut inner);
        }
    }

    /// `Start()`/chunk pacing — blocks until `job` may process chunk
    /// `chunk_idx` of the current partition, i.e. until every co-processing
    /// job is within `window` chunks behind. Call once per chunk. O(log
    /// jobs) per call: the minimum progress is maintained as a counted
    /// multiset, not recomputed by scanning every pending job.
    pub fn pace_chunk(&self, job: JobId, chunk_idx: usize) {
        let mut inner = self.inner.lock();
        loop {
            // Jobs enter `progress` (at 0) when `sharing` hands them the
            // partition and leave it at their barrier, so the multiset is
            // exactly the co-processing set the window constrains.
            let min_progress = inner.min_progress().unwrap_or(chunk_idx);
            if chunk_idx < min_progress + self.window {
                inner.set_progress(job, chunk_idx);
                // Pacing waiters block on the *minimum* progress; waking
                // them on every chunk of every job is a thundering herd.
                // Only a min advance (this job was the last one holding
                // it back) can unblock anyone. Barrier/advance keep their
                // unconditional notifies for partition turnover.
                if inner.min_progress() > Some(min_progress) {
                    self.cv.notify_all();
                }
                return;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// `Barrier()` — the job finished the current partition. The last
    /// finisher advances the sweep to the next partition.
    pub fn barrier(&self, job: JobId, pid: usize) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.current_pid, Some(pid), "barrier for a stale partition");
        inner.pending.remove(&job);
        inner.clear_progress(job);
        if inner.pending.is_empty() {
            self.advance(&mut inner);
        }
        self.cv.notify_all();
    }

    /// The job ended its iteration. `new_active_pids = None` (or an empty
    /// slice) retires the job (converged). Blocks until the next sweep
    /// begins so the caller can immediately call
    /// [`SharingRuntime::sharing`] again.
    pub fn end_iteration(&self, job: JobId, new_active_pids: Option<&[usize]>) {
        let retiring = matches!(new_active_pids, None | Some(&[]));
        let mut inner = self.inner.lock();
        // Global-table maintenance happens under the sweep lock so a sweep
        // never begins with a half-updated table.
        match new_active_pids {
            Some(pids) if !pids.is_empty() => self.global.set_active_partitions(job, pids),
            _ => self.global.remove_job(job),
        }
        let my_sweep = inner.sweep;
        inner.participants.remove(&job);
        if retiring {
            inner.registered.remove(&job);
        }
        if inner.participants.is_empty() && !inner.registered.is_empty() {
            // Last ender starts the next sweep so waiting peers wake up.
            self.begin_sweep(&mut inner);
        }
        // The last retiring job releases the busy-period generation pin
        // (the sweep itself already drained; nothing restarts without a
        // registration).
        if inner.source_pinned && inner.registered.is_empty() && inner.current_pid.is_none() {
            inner.source_pinned = false;
            self.source.sweep_end();
        }
        self.cv.notify_all();
        if retiring {
            return;
        }
        while inner.sweep == my_sweep {
            self.cv.wait(&mut inner);
        }
    }

    /// Emergency removal of a job that can no longer follow the
    /// sharing/barrier/end_iteration protocol (its kernel panicked). Safe
    /// to call with the job in *any* protocol position — mid-partition,
    /// suspended, between sweeps, or already retired — and leaves every
    /// surviving peer able to make progress: if the abandoned job was the
    /// last one holding up the current partition the sweep advances, and
    /// if it was the last participant of the sweep the next sweep begins
    /// for waiting enders.
    pub fn abandon(&self, job: JobId) {
        let mut inner = self.inner.lock();
        self.global.remove_job(job);
        inner.registered.remove(&job);
        inner.participants.remove(&job);
        inner.clear_progress(job);
        let was_pending = inner.pending.remove(&job);
        if was_pending && inner.pending.is_empty() {
            // It was the last job the current partition waited on.
            self.advance(&mut inner);
        }
        if inner.current_pid.is_none()
            && inner.participants.is_empty()
            && !inner.registered.is_empty()
        {
            // It was the last participant; peers parked in end_iteration
            // are waiting for someone to start the next sweep.
            self.begin_sweep(&mut inner);
        }
        if inner.source_pinned && inner.registered.is_empty() && inner.current_pid.is_none() {
            inner.source_pinned = false;
            self.source.sweep_end();
        }
        self.cv.notify_all();
    }

    fn begin_sweep(&self, inner: &mut Inner) {
        if inner.registered.is_empty() {
            inner.sweep_done = true;
            inner.current_pid = None;
            inner.buffer = None;
            return;
        }
        inner.sweep += 1;
        inner.sweep_done = false;
        inner.participants = inner.registered.clone();
        // Pin the source's data generation for the whole busy period —
        // first sweep through last job retirement — so a job spanning
        // many sweeps never sees a generation flip (delta stores defer
        // rotation adoption to the matching sweep_end).
        if !inner.source_pinned {
            self.source.sweep_begin();
            inner.source_pinned = true;
        }
        inner.order = loading_order(&self.global, self.policy).into();
        self.advance(inner);
        // Jobs parked in `sharing` awaiting this sweep must learn that it
        // started — `end_iteration` notifies after calling here, but the
        // `sharing`-initiated path would otherwise wake nobody.
        self.cv.notify_all();
    }

    fn advance(&self, inner: &mut Inner) {
        inner.progress.clear();
        inner.progress_counts.clear();
        loop {
            match inner.order.pop_front() {
                Some(pid) => {
                    let jobs: BTreeSet<JobId> = self
                        .global
                        .jobs_for(pid)
                        .into_iter()
                        .filter(|j| inner.participants.contains(j))
                        .collect();
                    if jobs.is_empty() {
                        continue;
                    }
                    // Feed the readahead thread before paying for the load:
                    // the upcoming window is advised while this partition
                    // is (loaded and) processed.
                    self.announce_prefetch(inner);
                    // One load serves every interested job. A failed load
                    // (injected or real I/O error) still advances the sweep:
                    // pending jobs get an empty buffer plus the error and
                    // retire themselves; the sweep — and the daemon — live on.
                    match self.source.try_load(pid) {
                        Ok(edges) => {
                            inner.buffer = Some(edges);
                            inner.buffer_err = None;
                        }
                        Err(e) => {
                            inner.buffer = Some(Arc::new(Vec::new()));
                            inner.buffer_err = Some(e.to_string());
                        }
                    }
                    inner.current_pid = Some(pid);
                    inner.pending = jobs;
                    inner.loads += 1;
                    return;
                }
                None => {
                    inner.current_pid = None;
                    inner.buffer = None;
                    inner.buffer_err = None;
                    inner.pending.clear();
                    inner.sweep_done = true;
                    // Job-scoped pin: release only once every job is
                    // gone (jobs re-enter sweeps until they retire).
                    if inner.source_pinned && inner.registered.is_empty() {
                        inner.source_pinned = false;
                        self.source.sweep_end();
                    }
                    return;
                }
            }
        }
    }

    /// Announces the next partitions of the current order to the prefetch
    /// hook, if one is installed. Cheap (the hook only enqueues), and
    /// called under the runtime lock so the announced window is exact.
    fn announce_prefetch(&self, inner: &Inner) {
        let hook = self.prefetch.lock().clone();
        if let Some((hook, lookahead)) = hook {
            let upcoming: Vec<usize> = inner.order.iter().copied().take(lookahead).collect();
            if !upcoming.is_empty() {
                hook(&upcoming);
            }
        }
    }
}

impl Drop for SharingRuntime {
    /// A runtime torn down mid-run (a panicking batch) must not leave
    /// its generation pin held — that would block a delta store from ever
    /// adopting a published rotation.
    fn drop(&mut self) {
        let mut inner = self.inner.lock();
        if inner.source_pinned {
            inner.source_pinned = false;
            self.source.sweep_end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use graphm_graph::generators;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn source(parts: usize) -> Arc<VecSource> {
        let g = generators::rmat(128, 1024, generators::RmatParams::GRAPH500, 5);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(parts);
        Arc::new(VecSource::new(128, edges.chunks(per).map(<[_]>::to_vec).collect()))
    }

    /// N threads × K iterations over all partitions: every partition is
    /// loaded once per sweep, results are complete, and nothing deadlocks.
    #[test]
    fn threaded_jobs_share_loads() {
        let src = source(4);
        let rt = SharingRuntime::new(src.clone(), SchedulingPolicy::Prioritized, 2);
        let all_pids: Vec<usize> = (0..4).collect();
        let edges_seen = Arc::new(AtomicU64::new(0));
        let iters = 3usize;
        let jobs = 4usize;
        // Register everyone before any thread starts so the first sweep
        // includes all four jobs (sweeps begin lazily on first sharing()).
        for job in 0..jobs {
            rt.register_job(job, &all_pids);
        }
        let mut handles = Vec::new();
        for job in 0..jobs {
            let rt = Arc::clone(&rt);
            let pids = all_pids.clone();
            let seen = Arc::clone(&edges_seen);
            handles.push(std::thread::spawn(move || {
                for it in 0..iters {
                    while let Some(sp) = rt.sharing(job) {
                        // Simulate chunked processing with pacing.
                        let nchunks = 4usize;
                        let per = sp.edges.len().div_ceil(nchunks).max(1);
                        for (ci, chunk) in sp.edges.chunks(per).enumerate() {
                            rt.pace_chunk(job, ci);
                            seen.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        }
                        rt.barrier(job, sp.pid);
                    }
                    let last = it + 1 == iters;
                    rt.end_iteration(job, if last { None } else { Some(&pids) });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            edges_seen.load(Ordering::Relaxed),
            (1024 * jobs * iters) as u64,
            "every job saw every edge every iteration"
        );
        // 4 partitions × 3 sweeps = 12 loads — NOT 4 × 3 × 4 jobs.
        assert_eq!(rt.loads(), 12);
    }

    #[test]
    fn jobs_with_disjoint_partitions_suspend_each_other() {
        let src = source(2);
        let rt = SharingRuntime::new(src, SchedulingPolicy::Default, 1);
        rt.register_job(0, &[0]);
        rt.register_job(1, &[1]);
        let rt0 = Arc::clone(&rt);
        let h0 = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(sp) = rt0.sharing(0) {
                seen.push(sp.pid);
                rt0.barrier(0, sp.pid);
            }
            rt0.end_iteration(0, None);
            seen
        });
        let rt1 = Arc::clone(&rt);
        let h1 = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(sp) = rt1.sharing(1) {
                seen.push(sp.pid);
                rt1.barrier(1, sp.pid);
            }
            rt1.end_iteration(1, None);
            seen
        });
        assert_eq!(h0.join().unwrap(), vec![0], "job 0 only handles partition 0");
        assert_eq!(h1.join().unwrap(), vec![1]);
        assert_eq!(rt.loads(), 2);
    }

    /// Stress: jobs keep registering *mid-sweep* while 8+ threads hammer
    /// many short sweeps. Invariants pinned here:
    ///
    /// * a joiner participates only from the *next* sweep — every
    ///   iteration it runs sees the whole graph (no partial first sweep,
    ///   and no spurious empty iteration between sweeps);
    /// * every `(sweep, partition)` pair with interested jobs is loaded
    ///   exactly once (`loads()` equals the distinct pairs observed);
    /// * nothing deadlocks and no wakeup is lost (the test completes).
    #[test]
    fn stress_mid_sweep_registration_joins_next_sweep() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;

        let parts = 4usize;
        let src = source(parts);
        let total_edges = 1024u64;
        let rt = SharingRuntime::new(src, SchedulingPolicy::Prioritized, 2);
        let all_pids: Vec<usize> = (0..parts).collect();
        let pairs = Arc::new(StdMutex::new(HashSet::<(u64, usize)>::new()));

        let spawn_job = |job: JobId, iters: usize| {
            let rt = Arc::clone(&rt);
            let pids = all_pids.clone();
            let pairs = Arc::clone(&pairs);
            std::thread::spawn(move || {
                for it in 0..iters {
                    let mut sweep_ids = HashSet::new();
                    let mut edges_seen = 0u64;
                    while let Some(sp) = rt.sharing(job) {
                        sweep_ids.insert(sp.sweep);
                        pairs.lock().unwrap().insert((sp.sweep, sp.pid));
                        let per = sp.edges.len().div_ceil(3).max(1);
                        for (ci, chunk) in sp.edges.chunks(per).enumerate() {
                            rt.pace_chunk(job, ci);
                            edges_seen += chunk.len() as u64;
                        }
                        rt.barrier(job, sp.pid);
                    }
                    assert_eq!(edges_seen, 1024, "job {job} iteration {it} saw a partial sweep");
                    assert_eq!(
                        sweep_ids.len(),
                        1,
                        "job {job} iteration {it} spanned sweeps {sweep_ids:?}"
                    );
                    let last = it + 1 == iters;
                    rt.end_iteration(job, if last { None } else { Some(&pids) });
                }
            })
        };

        // Four residents start together...
        let mut handles = Vec::new();
        for job in 0..4 {
            rt.register_job(job, &all_pids);
        }
        for job in 0..4 {
            handles.push(spawn_job(job, 10));
        }
        // ...and six more join while sweeps are in flight (staggered so
        // registrations land at arbitrary points inside sweeps).
        for job in 4..10usize {
            std::thread::sleep(std::time::Duration::from_millis(1 + (job as u64 % 3)));
            rt.register_job(job, &all_pids);
            handles.push(spawn_job(job, 4));
        }
        for h in handles {
            h.join().expect("job thread panicked");
        }
        let distinct = pairs.lock().unwrap().len() as u64;
        assert_eq!(rt.loads(), distinct, "every (sweep, partition) pair loaded exactly once");
        assert!(distinct < 10 * 10 * parts as u64, "sharing engaged (not per-job loads)");
        let _ = total_edges;
    }

    /// Stress: 8 lock-step threads through many short sweeps (the
    /// tightest window — 1 clamps to 2, the lock-step spread — and tiny
    /// partitions): the pacing fast-path and sweep turnover under maximum
    /// contention.
    #[test]
    fn stress_many_short_sweeps_lock_step() {
        let parts = 2usize;
        let src = source(parts);
        let rt = SharingRuntime::new(src, SchedulingPolicy::Default, 1);
        let all_pids: Vec<usize> = (0..parts).collect();
        let jobs = 8usize;
        let iters = 40usize;
        for job in 0..jobs {
            rt.register_job(job, &all_pids);
        }
        let seen = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for job in 0..jobs {
            let rt = Arc::clone(&rt);
            let pids = all_pids.clone();
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || {
                for it in 0..iters {
                    while let Some(sp) = rt.sharing(job) {
                        let per = sp.edges.len().div_ceil(8).max(1);
                        for (ci, chunk) in sp.edges.chunks(per).enumerate() {
                            rt.pace_chunk(job, ci);
                            seen.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        }
                        rt.barrier(job, sp.pid);
                    }
                    let last = it + 1 == iters;
                    rt.end_iteration(job, if last { None } else { Some(&pids) });
                }
            }));
        }
        for h in handles {
            h.join().expect("job thread panicked");
        }
        assert_eq!(seen.load(Ordering::Relaxed), (1024 * jobs * iters) as u64);
        assert_eq!(rt.loads(), (parts * iters) as u64);
    }

    /// A busy period takes exactly one generation pin at its first sweep
    /// and releases it when the last job retires — so a multi-iteration
    /// job can never straddle a rotation ([`PartitionSource::sweep_begin`]
    /// is the contract delta stores use to defer adoption).
    #[test]
    fn busy_period_pins_and_unpins_the_source() {
        struct PinCounting {
            inner: VecSource,
            begins: AtomicU64,
            ends: AtomicU64,
        }
        impl PartitionSource for PinCounting {
            fn num_partitions(&self) -> usize {
                self.inner.num_partitions()
            }
            fn num_vertices(&self) -> u32 {
                self.inner.num_vertices()
            }
            fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
                // A sweep's loads must happen under its pin.
                assert!(
                    self.begins.load(Ordering::SeqCst) > self.ends.load(Ordering::SeqCst),
                    "load outside a pinned sweep"
                );
                self.inner.load(pid)
            }
            fn partition_bytes(&self, pid: usize) -> usize {
                self.inner.partition_bytes(pid)
            }
            fn graph_bytes(&self) -> usize {
                self.inner.graph_bytes()
            }
            fn partition_active(&self, pid: usize, active: &graphm_graph::AtomicBitmap) -> bool {
                self.inner.partition_active(pid, active)
            }
            fn sweep_begin(&self) {
                self.begins.fetch_add(1, Ordering::SeqCst);
            }
            fn sweep_end(&self) {
                self.ends.fetch_add(1, Ordering::SeqCst);
            }
        }
        let g = generators::rmat(64, 512, generators::RmatParams::GRAPH500, 9);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(2);
        let src = Arc::new(PinCounting {
            inner: VecSource::new(64, edges.chunks(per).map(<[_]>::to_vec).collect()),
            begins: AtomicU64::new(0),
            ends: AtomicU64::new(0),
        });
        let rt = SharingRuntime::new(
            Arc::clone(&src) as Arc<dyn PartitionSource>,
            SchedulingPolicy::Prioritized,
            2,
        );
        let iters = 3usize;
        rt.register_job(0, &[0, 1]);
        for it in 0..iters {
            while let Some(sp) = rt.sharing(0) {
                rt.barrier(0, sp.pid);
            }
            let last = it + 1 == iters;
            rt.end_iteration(0, if last { None } else { Some(&[0, 1]) });
        }
        drop(rt);
        let begins = src.begins.load(Ordering::SeqCst);
        assert_eq!(begins, 1, "one pin for the whole busy period, not per sweep");
        assert_eq!(begins, src.ends.load(Ordering::SeqCst), "released when the last job retires");
    }

    #[test]
    fn single_job_runs_alone() {
        let src = source(3);
        let rt = SharingRuntime::new(src, SchedulingPolicy::Prioritized, 1);
        rt.register_job(7, &[0, 1, 2]);
        let mut pids = Vec::new();
        while let Some(sp) = rt.sharing(7) {
            pids.push(sp.pid);
            rt.barrier(7, sp.pid);
        }
        rt.end_iteration(7, None);
        pids.sort_unstable();
        assert_eq!(pids, vec![0, 1, 2]);
    }
}
