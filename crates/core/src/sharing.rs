//! The threaded sharing runtime — Algorithm 2 with real threads.
//!
//! This is the wall-clock counterpart of the deterministic
//! [`crate::runner`]: each job runs on its own OS thread and calls
//! [`SharingRuntime::sharing`] in place of the engine's native load (the
//! paper's `P_i_j ← Sharing(G, Load())`). The runtime:
//!
//! * loads every partition **once** per sweep into a shared buffer;
//! * *resumes* jobs that need the loaded partition and *suspends* the rest
//!   (Algorithm 2 lines 4–7) by blocking them on a condvar;
//! * paces jobs through the partition's chunks so their traversals stay
//!   within a bounded window of each other (the fine-grained
//!   synchronization of §3.4.2, realized as a progress window rather than
//!   CPU-slice accounting, which an OS scheduler does not expose);
//! * recomputes the §4 loading order between sweeps.

use crate::global_table::GlobalTable;
use crate::job::JobId;
use crate::scheduler::{loading_order, SchedulingPolicy};
use crate::source::PartitionSource;
use graphm_graph::Edge;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// A shared, loaded partition handed to a job by `Sharing()`.
pub struct SharedPartition {
    /// Partition id.
    pub pid: usize,
    /// The one shared copy of the partition's edges.
    pub edges: Arc<Vec<Edge>>,
    /// Sweep number this load belongs to.
    pub sweep: u64,
}

#[derive(Default)]
struct Inner {
    registered: BTreeSet<JobId>,
    /// Jobs participating in the current sweep.
    participants: BTreeSet<JobId>,
    /// Jobs that still have to process the current partition.
    pending: BTreeSet<JobId>,
    current_pid: Option<usize>,
    buffer: Option<Arc<Vec<Edge>>>,
    order: VecDeque<usize>,
    sweep: u64,
    sweep_done: bool,
    loads: u64,
    /// Chunk-progress window state for the current partition.
    progress: HashMap<JobId, usize>,
}

/// The runtime object shared by all job threads.
pub struct SharingRuntime {
    source: Arc<dyn PartitionSource>,
    /// Partition → interested-jobs table (§3.3.1).
    pub global: GlobalTable,
    policy: SchedulingPolicy,
    /// Maximum chunk-index spread jobs may have while co-processing a
    /// partition (1 = lock-step).
    window: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl SharingRuntime {
    /// Creates a runtime over `source` with the given loading-order policy
    /// and chunk-progress window.
    pub fn new(
        source: Arc<dyn PartitionSource>,
        policy: SchedulingPolicy,
        window: usize,
    ) -> Arc<SharingRuntime> {
        let global = GlobalTable::new(source.num_partitions());
        Arc::new(SharingRuntime {
            source,
            global,
            policy,
            window: window.max(1),
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
        })
    }

    /// Number of shared partition loads performed so far.
    pub fn loads(&self) -> u64 {
        self.inner.lock().loads
    }

    /// Registers a job with its initial active partitions. The job joins
    /// from the *next* sweep (a newly submitted job "waits for its active
    /// graph vertices/edges to be loaded into the memory"). Sweeps start
    /// lazily on the first `sharing()` call once no prior sweep is in
    /// flight, so a batch of registrations lands in one sweep.
    pub fn register_job(&self, job: JobId, active_pids: &[usize]) {
        let mut inner = self.inner.lock();
        self.global.set_active_partitions(job, active_pids);
        inner.registered.insert(job);
        self.cv.notify_all();
    }

    /// The `Sharing()` call of Table 1 — blocks until either the next
    /// partition this job must process is loaded (returning it) or the
    /// sweep is over (returning `None`; the job should then run
    /// `end_iteration` and call [`SharingRuntime::end_iteration`]).
    pub fn sharing(&self, job: JobId) -> Option<SharedPartition> {
        let mut inner = self.inner.lock();
        loop {
            if inner.pending.contains(&job) {
                let pid = inner.current_pid.expect("pending implies a current partition");
                let edges = Arc::clone(inner.buffer.as_ref().expect("buffer loaded"));
                inner.progress.insert(job, 0);
                return Some(SharedPartition { pid, edges, sweep: inner.sweep });
            }
            if inner.current_pid.is_none() {
                // No partition in flight: either start the next sweep (all
                // previous participants have ended their iterations) or
                // report end-of-sweep to this job.
                if inner.participants.is_empty() && !inner.registered.is_empty() {
                    self.begin_sweep(&mut inner);
                    continue;
                }
                return None;
            }
            // Suspended: this job does not need the current partition
            // (Algorithm 2 lines 5–7).
            self.cv.wait(&mut inner);
        }
    }

    /// `Start()`/chunk pacing — blocks until `job` may process chunk
    /// `chunk_idx` of the current partition, i.e. until every co-processing
    /// job is within `window` chunks behind. Call once per chunk.
    pub fn pace_chunk(&self, job: JobId, chunk_idx: usize) {
        let mut inner = self.inner.lock();
        loop {
            let min_progress = inner
                .pending
                .iter()
                .filter_map(|j| inner.progress.get(j))
                .copied()
                .min()
                .unwrap_or(chunk_idx);
            if chunk_idx < min_progress + self.window {
                inner.progress.insert(job, chunk_idx);
                self.cv.notify_all();
                return;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// `Barrier()` — the job finished the current partition. The last
    /// finisher advances the sweep to the next partition.
    pub fn barrier(&self, job: JobId, pid: usize) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.current_pid, Some(pid), "barrier for a stale partition");
        inner.pending.remove(&job);
        inner.progress.remove(&job);
        if inner.pending.is_empty() {
            self.advance(&mut inner);
        }
        self.cv.notify_all();
    }

    /// The job ended its iteration. `new_active_pids = None` (or an empty
    /// slice) retires the job (converged). Blocks until the next sweep
    /// begins so the caller can immediately call
    /// [`SharingRuntime::sharing`] again.
    pub fn end_iteration(&self, job: JobId, new_active_pids: Option<&[usize]>) {
        let retiring = matches!(new_active_pids, None | Some(&[]));
        let mut inner = self.inner.lock();
        // Global-table maintenance happens under the sweep lock so a sweep
        // never begins with a half-updated table.
        match new_active_pids {
            Some(pids) if !pids.is_empty() => self.global.set_active_partitions(job, pids),
            _ => self.global.remove_job(job),
        }
        let my_sweep = inner.sweep;
        inner.participants.remove(&job);
        if retiring {
            inner.registered.remove(&job);
        }
        if inner.participants.is_empty() && !inner.registered.is_empty() {
            // Last ender starts the next sweep so waiting peers wake up.
            self.begin_sweep(&mut inner);
        }
        self.cv.notify_all();
        if retiring {
            return;
        }
        while inner.sweep == my_sweep {
            self.cv.wait(&mut inner);
        }
    }

    fn begin_sweep(&self, inner: &mut Inner) {
        if inner.registered.is_empty() {
            inner.sweep_done = true;
            inner.current_pid = None;
            inner.buffer = None;
            return;
        }
        inner.sweep += 1;
        inner.sweep_done = false;
        inner.participants = inner.registered.clone();
        inner.order = loading_order(&self.global, self.policy).into();
        self.advance(inner);
    }

    fn advance(&self, inner: &mut Inner) {
        inner.progress.clear();
        loop {
            match inner.order.pop_front() {
                Some(pid) => {
                    let jobs: BTreeSet<JobId> = self
                        .global
                        .jobs_for(pid)
                        .into_iter()
                        .filter(|j| inner.participants.contains(j))
                        .collect();
                    if jobs.is_empty() {
                        continue;
                    }
                    // One load serves every interested job.
                    inner.buffer = Some(self.source.load(pid));
                    inner.current_pid = Some(pid);
                    inner.pending = jobs;
                    inner.loads += 1;
                    return;
                }
                None => {
                    inner.current_pid = None;
                    inner.buffer = None;
                    inner.pending.clear();
                    inner.sweep_done = true;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use graphm_graph::generators;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn source(parts: usize) -> Arc<VecSource> {
        let g = generators::rmat(128, 1024, generators::RmatParams::GRAPH500, 5);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(parts);
        Arc::new(VecSource::new(128, edges.chunks(per).map(<[_]>::to_vec).collect()))
    }

    /// N threads × K iterations over all partitions: every partition is
    /// loaded once per sweep, results are complete, and nothing deadlocks.
    #[test]
    fn threaded_jobs_share_loads() {
        let src = source(4);
        let rt = SharingRuntime::new(src.clone(), SchedulingPolicy::Prioritized, 2);
        let all_pids: Vec<usize> = (0..4).collect();
        let edges_seen = Arc::new(AtomicU64::new(0));
        let iters = 3usize;
        let jobs = 4usize;
        // Register everyone before any thread starts so the first sweep
        // includes all four jobs (sweeps begin lazily on first sharing()).
        for job in 0..jobs {
            rt.register_job(job, &all_pids);
        }
        let mut handles = Vec::new();
        for job in 0..jobs {
            let rt = Arc::clone(&rt);
            let pids = all_pids.clone();
            let seen = Arc::clone(&edges_seen);
            handles.push(std::thread::spawn(move || {
                for it in 0..iters {
                    while let Some(sp) = rt.sharing(job) {
                        // Simulate chunked processing with pacing.
                        let nchunks = 4usize;
                        let per = sp.edges.len().div_ceil(nchunks).max(1);
                        for (ci, chunk) in sp.edges.chunks(per).enumerate() {
                            rt.pace_chunk(job, ci);
                            seen.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        }
                        rt.barrier(job, sp.pid);
                    }
                    let last = it + 1 == iters;
                    rt.end_iteration(job, if last { None } else { Some(&pids) });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            edges_seen.load(Ordering::Relaxed),
            (1024 * jobs * iters) as u64,
            "every job saw every edge every iteration"
        );
        // 4 partitions × 3 sweeps = 12 loads — NOT 4 × 3 × 4 jobs.
        assert_eq!(rt.loads(), 12);
    }

    #[test]
    fn jobs_with_disjoint_partitions_suspend_each_other() {
        let src = source(2);
        let rt = SharingRuntime::new(src, SchedulingPolicy::Default, 1);
        rt.register_job(0, &[0]);
        rt.register_job(1, &[1]);
        let rt0 = Arc::clone(&rt);
        let h0 = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(sp) = rt0.sharing(0) {
                seen.push(sp.pid);
                rt0.barrier(0, sp.pid);
            }
            rt0.end_iteration(0, None);
            seen
        });
        let rt1 = Arc::clone(&rt);
        let h1 = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(sp) = rt1.sharing(1) {
                seen.push(sp.pid);
                rt1.barrier(1, sp.pid);
            }
            rt1.end_iteration(1, None);
            seen
        });
        assert_eq!(h0.join().unwrap(), vec![0], "job 0 only handles partition 0");
        assert_eq!(h1.join().unwrap(), vec![1]);
        assert_eq!(rt.loads(), 2);
    }

    #[test]
    fn single_job_runs_alone() {
        let src = source(3);
        let rt = SharingRuntime::new(src, SchedulingPolicy::Prioritized, 1);
        rt.register_job(7, &[0, 1, 2]);
        let mut pids = Vec::new();
        while let Some(sp) = rt.sharing(7) {
            pids.push(sp.pid);
            rt.barrier(7, sp.pid);
        }
        rt.end_iteration(7, None);
        pids.sort_unstable();
        assert_eq!(pids, vec![0, 1, 2]);
    }
}
