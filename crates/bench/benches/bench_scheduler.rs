//! Formula-5 loading-order computation cost as partitions and jobs grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphm_core::{loading_order, GlobalTable, SchedulingPolicy};

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("loading_order");
    for (parts, jobs) in [(16usize, 8usize), (64, 16), (256, 32)] {
        let table = GlobalTable::new(parts);
        for j in 0..jobs {
            let pids: Vec<usize> = (0..parts).filter(|p| (p + j) % (j + 2) == 0).collect();
            table.set_active_partitions(j, &pids);
        }
        group.bench_with_input(
            BenchmarkId::new("prioritized", format!("{parts}p_{jobs}j")),
            &table,
            |b, t| b.iter(|| loading_order(t, SchedulingPolicy::Prioritized)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
