//! Single-job iteration throughput of each host engine substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphm_algos::PageRank;
use graphm_graph::generators;
use graphm_graphchi::GraphChiEngine;
use graphm_gridgraph::GridGraphEngine;

fn bench_engines(c: &mut Criterion) {
    let g = generators::rmat(50_000, 500_000, generators::RmatParams::GRAPH500, 5);
    let (grid, _) = GridGraphEngine::convert(&g, 4);
    let (chi, _) = GraphChiEngine::convert(&g, 16);
    let mut group = c.benchmark_group("engine_iteration");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.sample_size(10);
    group.bench_function("gridgraph_pagerank_iter", |b| {
        b.iter(|| {
            let mut pr =
                PageRank::new(g.num_vertices, grid.out_degrees(), 0.85, 1).with_tolerance(0.0);
            grid.run_job(&mut pr, 1)
        })
    });
    group.bench_function("graphchi_pagerank_iter", |b| {
        b.iter(|| {
            let mut pr =
                PageRank::new(g.num_vertices, chi.out_degrees(), 0.85, 1).with_tolerance(0.0);
            chi.run_job(&mut pr, 1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
