//! Replication frame codec throughput: the per-generation cost a
//! primary pays to ship and a follower pays to verify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphm_graph::delta::DeltaRecord;
use graphm_store::{decode_frame, encode_frame, FrameKind, ReplFrame};

fn frame_with(records: usize) -> ReplFrame {
    let mut x = 0x9e3779b97f4a7c15u64;
    let recs = (0..records)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = (x >> 40) as u32 & 0xffff;
            let dst = (x >> 20) as u32 & 0xffff;
            if x & 3 == 0 {
                DeltaRecord::delete(src, dst)
            } else {
                DeltaRecord::insert(src, dst, (x & 0xff) as f32 * 0.25)
            }
        })
        .collect();
    ReplFrame { generation: 7, primary_epoch: 3, kind: FrameKind::Delta, records: recs }
}

fn bench_repl(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl_frame_codec");
    for records in [100usize, 10_000, 1_000_000] {
        let frame = frame_with(records);
        let bytes = encode_frame(&frame);
        group.throughput(Throughput::Elements(records as u64));
        group.bench_with_input(BenchmarkId::new("encode", records), &frame, |b, f| {
            b.iter(|| encode_frame(f))
        });
        group.bench_with_input(BenchmarkId::new("decode", records), &bytes, |b, s| {
            b.iter(|| decode_frame(s).unwrap())
        });
    }
    group.finish();

    // The rejection path followers hit on a corrupt byte: CRC check over
    // the whole payload, typed error out.
    let mut corrupt = encode_frame(&frame_with(10_000));
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    c.bench_function("repl_frame_reject_corrupt_10k", |b| {
        b.iter(|| decode_frame(&corrupt).unwrap_err())
    });
}

criterion_group!(benches, bench_repl);
criterion_main!(benches);
