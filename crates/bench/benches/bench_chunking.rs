//! Algorithm-1 labelling throughput and Formula-1 sizing cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphm_core::{chunk_size_bytes, label_partition};
use graphm_graph::{generators, MemoryProfile};

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("labelling");
    for edges in [10_000usize, 100_000, 1_000_000] {
        let g = generators::rmat(edges as u32 / 16, edges, generators::RmatParams::GRAPH500, 3);
        let mut sorted = g.edges.clone();
        sorted.sort_by_key(|e| e.src);
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::new("label_partition", edges), &sorted, |b, s| {
            b.iter(|| label_partition(s, 32 << 10))
        });
    }
    group.finish();
    c.bench_function("formula1_chunk_size", |b| {
        b.iter(|| chunk_size_bytes(&MemoryProfile::DEFAULT, 18 << 20, 41_700, 8))
    });
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
