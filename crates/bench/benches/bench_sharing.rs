//! Wall-clock comparison of the three execution schemes with real threads
//! (GridGraph host): the headline Share-Synchronize effect, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphm_algos::PageRank;
use graphm_core::GraphJob;
use graphm_graph::generators;
use graphm_gridgraph::{wall, GridGraphEngine};

fn jobs(engine: &GridGraphEngine, n_vertices: u32, count: usize) -> Vec<Box<dyn GraphJob>> {
    (0..count)
        .map(|i| {
            Box::new(
                PageRank::new(n_vertices, engine.out_degrees(), 0.5 + 0.05 * i as f64, 3)
                    .with_tolerance(0.0),
            ) as Box<dyn GraphJob>
        })
        .collect()
}

fn bench_sharing(c: &mut Criterion) {
    let g = generators::rmat(20_000, 200_000, generators::RmatParams::GRAPH500, 7);
    let (engine, _) = GridGraphEngine::convert(&g, 4);
    let mut group = c.benchmark_group("sharing_wall");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| wall::run_sequential(jobs(&engine, g.num_vertices, n), &engine, 10))
        });
        group.bench_with_input(BenchmarkId::new("concurrent", n), &n, |b, &n| {
            b.iter(|| wall::run_concurrent(jobs(&engine, g.num_vertices, n), &engine, 10))
        });
        group.bench_with_input(BenchmarkId::new("shared", n), &n, |b, &n| {
            b.iter(|| wall::run_shared(jobs(&engine, g.num_vertices, n), &engine, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
