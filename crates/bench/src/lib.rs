//! # graphm-bench — harnesses regenerating every table and figure
//!
//! One binary per experiment (see `src/bin/`); each prints the paper's
//! rows/series to stdout and writes a JSON record under
//! `target/graphm-results/` for `EXPERIMENTS.md`.
//!
//! Environment knobs:
//!
//! * `GRAPHM_SCALE` — dataset scale divisor (default 16; 1 = full
//!   stand-in scale, slower but highest fidelity);
//! * `GRAPHM_JOBS` — concurrent job count where the paper uses 16;
//! * `GRAPHM_SEED` — workload seed (default 42).
//!
//! Run binaries with `--release`; the cache simulator is the hot loop.

use graphm_cachesim::Metrics;
use graphm_graph::DatasetId;
use graphm_workloads::{scaled_profile, Workbench};
use serde_json::{json, Value};
use std::io::Write;
use std::path::PathBuf;

/// Reads an env var integer with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Dataset scale divisor for this run.
pub fn scale() -> usize {
    env_usize("GRAPHM_SCALE", 16).max(1)
}

/// Concurrent job count for 16-job experiments.
pub fn jobs() -> usize {
    env_usize("GRAPHM_JOBS", 16).max(1)
}

/// Workload seed.
pub fn seed() -> u64 {
    env_usize("GRAPHM_SEED", 42) as u64
}

/// Grid dimension used by the GridGraph experiments (64 blocks; the paper
/// sizes `P` so blocks stream through memory comfortably — per-process
/// stream buffers must stay small next to DRAM).
pub const GRID_P: usize = 8;

/// Builds the standard workbench for a dataset at the current scale.
pub fn workbench(id: DatasetId) -> Workbench {
    Workbench::dataset(id, scale(), GRID_P)
}

/// The scaled memory profile used for standalone (non-workbench) runs.
pub fn profile() -> graphm_graph::MemoryProfile {
    scaled_profile(graphm_graph::MemoryProfile::DEFAULT, scale())
}

/// Prints an experiment banner.
pub fn banner(exp: &str, what: &str) {
    println!("================================================================");
    println!("{exp} — {what}");
    println!(
        "scale=1/{}  jobs={}  seed={}  (GRAPHM_SCALE / GRAPHM_JOBS / GRAPHM_SEED)",
        scale(),
        jobs(),
        seed()
    );
    println!("================================================================");
}

/// Prints a table header.
pub fn header(cols: &[&str]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Prints one row of mixed-format cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float compactly.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Normalizes a series to its maximum (the paper's "normalized" y-axes).
pub fn normalize(series: &[f64]) -> Vec<f64> {
    let max = series.iter().cloned().fold(0.0f64, f64::max);
    if max == 0.0 {
        series.to_vec()
    } else {
        series.iter().map(|v| v / max).collect()
    }
}

/// Converts virtual nanoseconds to seconds for display.
pub fn ns_to_s(ns: f64) -> f64 {
    ns / 1e9
}

/// Extracts the headline counters of a run into JSON.
pub fn metrics_json(m: &Metrics) -> Value {
    let mut map = serde_json::Map::new();
    for (k, v) in m.iter() {
        map.insert(k.to_string(), json!(v));
    }
    Value::Object(map)
}

/// Writes an experiment's JSON record to `target/graphm-results/`.
pub fn save_json(name: &str, value: &Value) {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("target");
    dir.push("graphm-results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    dir.push(format!("{name}.json"));
    if let Ok(mut file) = std::fs::File::create(&dir) {
        let _ = writeln!(file, "{}", serde_json::to_string_pretty(value).unwrap());
        println!("\n[saved {}]", dir.display());
    }
}

/// The §5.3 main-evaluation sweep: the paper's 16-job mix on every dataset
/// under all three schemes. Shared by Figures 9–14.
pub fn main_eval(
) -> Vec<(DatasetId, graphm_core::RunReport, graphm_core::RunReport, graphm_core::RunReport)> {
    DatasetId::ALL
        .into_iter()
        .map(|id| {
            let wb = workbench(id);
            let specs = wb.paper_mix(jobs(), seed());
            let (s, c, m) = wb.run_all_schemes(&specs);
            eprintln!(
                "[{}] S={:.3}s C={:.3}s M={:.3}s",
                id.name(),
                ns_to_s(s.makespan_ns),
                ns_to_s(c.makespan_ns),
                ns_to_s(m.makespan_ns)
            );
            (id, s, c, m)
        })
        .collect()
}

/// Prints a normalized three-scheme comparison for one metric and returns
/// the raw values as JSON.
pub fn scheme_table(
    title: &str,
    results: &[(
        DatasetId,
        graphm_core::RunReport,
        graphm_core::RunReport,
        graphm_core::RunReport,
    )],
    get: impl Fn(&graphm_core::RunReport) -> f64,
) -> Value {
    println!("\n{title} (normalized per dataset; raw in parentheses)");
    header(&["dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M"]);
    let mut recs = Vec::new();
    for (id, s, c, m) in results {
        let vals = [get(s), get(c), get(m)];
        let norm = normalize(&vals);
        row(&[
            id.name().into(),
            format!("{:.3} ({})", norm[0], f(vals[0])),
            format!("{:.3} ({})", norm[1], f(vals[1])),
            format!("{:.3} ({})", norm[2], f(vals[2])),
        ]);
        recs.push(json!({ "dataset": id.name(), "S": vals[0], "C": vals[1], "M": vals[2] }));
    }
    Value::Array(recs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        assert_eq!(env_usize("GRAPHM_NO_SUCH_VAR_XYZ", 7), 7);
        assert!(scale() >= 1);
    }

    #[test]
    fn normalize_caps_at_one() {
        let n = normalize(&[1.0, 2.0, 4.0]);
        assert_eq!(n, vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn format_compact() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.500");
        assert!(f(1e9).contains('e'));
    }
}
