//! Wall-clock speedup of the threaded shared execution path.
//!
//! Runs the paper job mix over a **disk-resident** grid store four ways
//! and measures real elapsed time:
//!
//! * `deterministic` — the virtual-time replay (`Scheme::Shared` through
//!   the cache simulator) on one thread: what the daemon's
//!   `deterministic` mode costs per batch in wall time;
//! * `single_thread` — the same shared sweep loop executing *real* jobs
//!   on one thread (identical results to the threaded path; the fair
//!   single-core baseline);
//! * `threaded` — one OS thread per job over the `SharingRuntime`, with
//!   the partition prefetcher fed by the §4 loading order (the daemon's
//!   `wallclock` mode);
//! * `exclusive` — one thread per job with private loads (the `-C`
//!   baseline: `jobs x partitions x sweeps` loads instead of shared).
//!
//! Also sweeps the threaded path over growing batch sizes (job scaling ≈
//! core scaling for one-thread-per-job execution), measures the
//! **single-heavy-job** regime (1 job × N cores: intra-job chunk fan-out
//! vs the strict one-thread-per-job loop, gated ≥ 1.5x on ≥ 4 cores),
//! records the disk store's resident/evicted byte accounting under an
//! out-of-core memory budget, and emits `BENCH_wallclock.json`.
//!
//! Knobs: `GRAPHM_SCALE`, `GRAPHM_JOBS`, `GRAPHM_SEED`.

use graphm_core::{PartitionSource, Scheme, WallClockExecutor, WallRunReport};
use graphm_store::{PrefetchTarget, Prefetcher};
use graphm_workloads::{immediate_arrivals, AlgoKind, JobSpec, Workbench};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    graphm_bench::banner(
        "wallclock-speedup",
        "threaded shared sweeps + prefetch vs single-thread and exclusive loading (wall clock)",
    );
    let id = graphm_graph::DatasetId::LiveJ;
    let wb_mem = graphm_bench::workbench(id);
    let jobs_n = graphm_bench::jobs();
    let specs = wb_mem.paper_mix(jobs_n, graphm_bench::seed());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Serve from disk so the prefetcher has cold segments to advise.
    let dir = std::env::temp_dir().join(format!("graphm-wallclock-bench-{}", std::process::id()));
    let manifest = graphm_store::Convert::grid(graphm_bench::GRID_P)
        .write(wb_mem.graph(), &dir)
        .expect("convert to disk");
    let wb = Workbench::from_disk(&dir, wb_mem.profile).expect("open disk store");
    let disk = Arc::clone(wb.disk_source().expect("disk-backed"));
    let partitions = manifest.partitions.len();
    eprintln!("[setup] {partitions} partitions on disk, {jobs_n} jobs, {cores} cores");

    let mk = |specs: &[graphm_workloads::JobSpec]| {
        specs.iter().map(|s| s.instantiate(wb.num_vertices(), &wb.out_degrees)).collect::<Vec<_>>()
    };

    let prefetcher = Prefetcher::spawn(Arc::clone(&disk) as Arc<dyn PrefetchTarget>);
    let exec = WallClockExecutor::new(
        Arc::clone(&disk) as Arc<dyn PartitionSource>,
        wb.wallclock_config(),
        Some(prefetcher.hook()),
    );

    // Mode 1: deterministic virtual-time replay (wall cost of simulation).
    let t = Instant::now();
    let det = wb.run(Scheme::Shared, &specs, &immediate_arrivals(specs.len()));
    let det_ms = t.elapsed().as_secs_f64() * 1e3;

    // Mode 2: real jobs, one thread (same shared loop, same answers).
    let single = exec.run_batch_single_thread(mk(&specs));
    // Mode 3: real jobs, one thread per job through the sharing runtime.
    let threaded = exec.run_batch(mk(&specs));
    // Mode 4: real jobs, one thread per job, private loads.
    let exclusive = exec.run_batch_exclusive(mk(&specs));

    // The threaded path must not change answers or load counts.
    for (a, b) in single.jobs.iter().zip(&threaded.jobs) {
        assert_eq!(a.values, b.values, "threaded changed job {} values", a.id);
        assert_eq!(a.iterations, b.iterations, "threaded changed job {} iterations", a.id);
    }
    assert_eq!(
        single.partition_loads, threaded.partition_loads,
        "threaded path must keep the shared load count"
    );
    // With one job there is nothing to share, so the counts tie.
    if jobs_n > 1 {
        assert!(
            threaded.partition_loads < exclusive.partition_loads,
            "sharing must beat per-job-exclusive loading on loads"
        );
    } else {
        assert!(threaded.partition_loads <= exclusive.partition_loads);
    }
    let speedup_vs_single = single.total_ms / threaded.total_ms.max(1e-9);
    let speedup_vs_det = det_ms / threaded.total_ms.max(1e-9);
    // Acceptance gate: the threaded path must serve the mix at least 2x
    // faster than the single-thread deterministic (virtual-time replay)
    // path — the daemon's only runtime before wallclock mode existed.
    // Gated on real parallelism being available; the single_thread row
    // above is the harsher real-compute baseline, reported for context.
    if cores >= 4 {
        assert!(
            speedup_vs_det >= 2.0,
            "on {cores} cores the threaded shared path must be >= 2x the single-thread \
             deterministic path (got {speedup_vs_det:.2}x)"
        );
    }

    graphm_bench::header(&["mode", "wall_ms", "jobs_per_s", "loads"]);
    let print_mode = |name: &str, ms: f64, loads: u64| {
        graphm_bench::row(&[
            name.to_string(),
            format!("{ms:.1}"),
            format!("{:.2}", specs.len() as f64 / (ms / 1e3).max(1e-9)),
            loads.to_string(),
        ]);
    };
    print_mode(
        "deterministic",
        det_ms,
        det.metrics.get(graphm_cachesim::keys::PARTITION_LOADS) as u64,
    );
    print_mode("single_thread", single.total_ms, single.partition_loads);
    print_mode("threaded", threaded.total_ms, threaded.partition_loads);
    print_mode("exclusive", exclusive.total_ms, exclusive.partition_loads);
    println!(
        "\nspeedup threaded vs single_thread: {speedup_vs_single:.2}x  \
         (vs deterministic replay: {speedup_vs_det:.2}x) on {cores} cores"
    );
    let pf = disk.prefetch_stats();
    println!(
        "prefetch: {} hints issued, {} loads pre-advised, {:.2} ms advising; \
         shared loads {} (one per (sweep, partition)) vs {} under per-job-exclusive loading",
        pf.issued,
        pf.hits,
        pf.advise_ns as f64 / 1e6,
        threaded.partition_loads,
        exclusive.partition_loads
    );

    // Job scaling: with one thread per job, batch size is the parallelism.
    let mut scaling = Vec::new();
    let mut n = 1usize;
    while n <= jobs_n {
        let slice = &specs[..n];
        let r: WallRunReport = exec.run_batch(mk(slice));
        scaling.push(json!({
            "jobs": n,
            "wall_ms": r.total_ms,
            "jobs_per_sec": r.jobs_per_sec(),
            "partition_loads": r.partition_loads,
        }));
        n *= 2;
    }

    // Single-heavy-job series (Figure 20's low-concurrency regime): one
    // PageRank streaming the whole graph for many iterations. With one
    // thread per job this leaves every other core idle; intra-job chunk
    // fan-out must reclaim them without changing a single bit.
    let heavy = [JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters: 40 }];
    let mut no_fan_cfg = wb.wallclock_config();
    no_fan_cfg.chunk_fanout = false;
    let exec_no_fan = WallClockExecutor::new(
        Arc::clone(&disk) as Arc<dyn PartitionSource>,
        no_fan_cfg,
        Some(prefetcher.hook()),
    );
    let heavy_serial = exec_no_fan.run_batch(mk(&heavy));
    let heavy_fan = exec.run_batch(mk(&heavy)); // chunk_fanout on by default
    for (a, b) in heavy_serial.jobs.iter().zip(&heavy_fan.jobs) {
        assert_eq!(a.iterations, b.iterations, "fan-out changed iteration count");
        assert_eq!(a.edges_processed, b.edges_processed, "fan-out changed edge count");
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "fan-out changed job values");
        }
    }
    assert_eq!(
        heavy_serial.partition_loads, heavy_fan.partition_loads,
        "fan-out must keep the Formula-5 shared load count"
    );
    let speedup_intra = heavy_serial.total_ms / heavy_fan.total_ms.max(1e-9);
    println!(
        "\nsingle heavy job (PageRank x 40 iters): {:.1} ms one-thread vs {:.1} ms \
         with chunk fan-out = {speedup_intra:.2}x on {cores} cores",
        heavy_serial.total_ms, heavy_fan.total_ms
    );
    // Acceptance gate: a single heavy job must run >= 1.5x faster with
    // intra-job fan-out when cores are plentiful (1 job on >= 4 cores).
    if cores >= 4 {
        assert!(
            speedup_intra >= 1.5,
            "on {cores} cores intra-job chunk fan-out must be >= 1.5x the \
             one-thread-per-job path (got {speedup_intra:.2}x)"
        );
    }

    // Out-of-core residency: rerun the heavy job under a page-cache
    // budget of half the store — the sweep must release segments behind
    // the frontier (nonzero evictions) without changing the job's values;
    // the unbudgeted run must never evict.
    let rs_before = disk.residency_stats();
    assert_eq!(rs_before.evictions, 0, "unbudgeted runs must not evict");
    let store_bytes: u64 = manifest.partitions.iter().map(|p| p.byte_len).sum();
    disk.set_memory_budget(store_bytes / 2);
    let heavy_ooc = exec.run_batch(mk(&heavy));
    let rs_ooc = disk.residency_stats();
    disk.set_memory_budget(0);
    for (a, b) in heavy_fan.jobs.iter().zip(&heavy_ooc.jobs) {
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "eviction changed job values");
        }
    }
    assert!(rs_ooc.evictions > 0, "an out-of-core budget must evict behind the frontier");
    println!(
        "out-of-core (budget {} B): resident {} B, evicted {} B over {} evictions, \
         adaptive prefetch window {}",
        store_bytes / 2,
        rs_ooc.resident_bytes,
        rs_ooc.evicted_bytes,
        rs_ooc.evictions,
        rs_ooc.prefetch_window
    );

    let heavy_json = json!({
        "algo": "pagerank",
        "iterations": heavy_fan.jobs[0].iterations,
        "one_thread_wall_ms": heavy_serial.total_ms,
        "chunk_fanout_wall_ms": heavy_fan.total_ms,
        "speedup_intra_job": speedup_intra,
        "partition_loads": heavy_fan.partition_loads,
    });
    let residency_json = json!({
        "store_bytes": store_bytes,
        "budget_bytes": store_bytes / 2,
        "in_memory_resident_bytes": rs_before.resident_bytes,
        "in_memory_evictions": rs_before.evictions,
        "out_of_core_resident_bytes": rs_ooc.resident_bytes,
        "out_of_core_evicted_bytes": rs_ooc.evicted_bytes,
        "out_of_core_evictions": rs_ooc.evictions,
        "adaptive_prefetch_window": rs_ooc.prefetch_window,
    });
    graphm_bench::save_json(
        "BENCH_wallclock",
        &json!({
            "dataset": id.name(),
            "jobs": specs.len(),
            "cores": cores,
            "partitions": partitions,
            "deterministic_wall_ms": det_ms,
            "single_thread_wall_ms": single.total_ms,
            "threaded_wall_ms": threaded.total_ms,
            "exclusive_wall_ms": exclusive.total_ms,
            "threaded_jobs_per_sec": threaded.jobs_per_sec(),
            "single_thread_jobs_per_sec": single.jobs_per_sec(),
            "exclusive_jobs_per_sec": exclusive.jobs_per_sec(),
            "speedup_threaded_vs_single": speedup_vs_single,
            "speedup_threaded_vs_deterministic": speedup_vs_det,
            "shared_partition_loads": threaded.partition_loads,
            "exclusive_partition_loads": exclusive.partition_loads,
            "prefetch_issued": pf.issued,
            "prefetch_hits": pf.hits,
            "prefetch_advise_ns": pf.advise_ns,
            "core_scaling": scaling,
            "single_heavy_job": heavy_json,
            "residency": residency_json,
        }),
    );
    drop(exec);
    drop(prefetcher);
    drop(wb);
    drop(disk);
    std::fs::remove_dir_all(&dir).ok();
}
