//! Figure 3 — the motivating measurement: concurrent jobs on plain
//! GridGraph (scheme C) over Twitter. (a) total memory, (b) total LLC
//! misses, (c) LLC misses per instruction, (d) average execution time,
//! each for 1/2/4/8 concurrent jobs of each algorithm.

use graphm_cachesim::keys;
use graphm_core::Scheme;
use graphm_workloads::{immediate_arrivals, AlgoKind, MixConfig};
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 3", "concurrent jobs on GridGraph-C over twitter-sim");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::Twitter);
    let algos = [AlgoKind::PageRank, AlgoKind::Wcc, AlgoKind::Bfs, AlgoKind::Sssp];
    let counts = [1usize, 2, 4, 8];
    let mut records = Vec::new();
    graphm_bench::header(&["algo", "jobs", "mem(MB)", "LLCmiss(M)", "LPI", "avg-time(s)"]);
    for algo in algos {
        for &n in &counts {
            let specs = graphm_workloads::generate_mix(
                wb.num_vertices(),
                &MixConfig::uniform(algo, n, graphm_bench::seed()),
            );
            let r = wb.run(Scheme::Concurrent, &specs, &immediate_arrivals(n));
            let mem_mb = r.metrics.get(keys::PEAK_MEMORY_BYTES) / (1 << 20) as f64;
            let misses = r.metrics.get(keys::LLC_MISSES);
            let lpi = misses / r.metrics.get(keys::INSTRUCTIONS).max(1.0);
            let avg_s = graphm_bench::ns_to_s(r.avg_job_turnaround_ns());
            graphm_bench::row(&[
                algo.name().into(),
                n.to_string(),
                format!("{mem_mb:.2}"),
                format!("{:.2}", misses / 1e6),
                format!("{lpi:.5}"),
                format!("{avg_s:.3}"),
            ]);
            records.push(json!({
                "algo": algo.name(), "jobs": n, "memory_bytes": r.metrics.get(keys::PEAK_MEMORY_BYTES),
                "llc_misses": misses, "lpi": lpi, "avg_time_ns": r.avg_job_turnaround_ns(),
            }));
        }
    }
    println!("\n(paper: all four metrics grow with the job count; LPI rises ~10% at 8 jobs)");
    graphm_bench::save_json("fig03_motivation", &json!({ "points": records }));
}
