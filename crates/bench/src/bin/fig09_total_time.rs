//! Figure 9 — total execution time of the 16-job mix under
//! GridGraph-S / -C / -M on every dataset (normalized).

use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 9", "total execution time for 16 concurrent jobs");
    let results = graphm_bench::main_eval();
    let rows = graphm_bench::scheme_table("Total execution time (s)", &results, |r| {
        graphm_bench::ns_to_s(r.makespan_ns)
    });
    // Paper-style summary: throughput improvement of M over S and C.
    let mut in_mem = (0.0, 0.0);
    let mut ooc = (0.0, 0.0);
    let mut in_n = 0.0;
    let mut ooc_n = 0.0;
    for (id, s, c, m) in &results {
        let (vs_s, vs_c) = (s.makespan_ns / m.makespan_ns, c.makespan_ns / m.makespan_ns);
        if id.spec().fits_in_memory {
            in_mem.0 += vs_s;
            in_mem.1 += vs_c;
            in_n += 1.0;
        } else {
            ooc.0 += vs_s;
            ooc.1 += vs_c;
            ooc_n += 1.0;
        }
    }
    println!("\nGridGraph-M speedup, in-memory datasets:   {:.2}x vs S, {:.2}x vs C (paper: 2.6x / 1.73x)",
        in_mem.0 / in_n, in_mem.1 / in_n);
    println!(
        "GridGraph-M speedup, out-of-core datasets: {:.2}x vs S, {:.2}x vs C (paper: 11.6x / 13x)",
        ooc.0 / ooc_n,
        ooc.1 / ooc_n
    );
    graphm_bench::save_json("fig09_total_time", &json!({ "rows": rows }));
}
