//! Figure 18 — the §4 scheduling strategy: GridGraph-M with the Formula-5
//! loading order vs GridGraph-M-without (engine-native order).

use graphm_core::Scheme;
use graphm_workloads::immediate_arrivals;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 18", "loading-order scheduling strategy on/off");
    graphm_bench::header(&["dataset", "M-without(s)", "M(s)", "ratio"]);
    let mut recs = Vec::new();
    for id in graphm_graph::DatasetId::ALL {
        let wb = graphm_bench::workbench(id);
        let specs = wb.paper_mix(graphm_bench::jobs(), graphm_bench::seed());
        let arr = immediate_arrivals(specs.len());
        let with = wb.run_with(Scheme::Shared, &specs, &arr, &wb.runner_config());
        let without =
            wb.run_with(Scheme::Shared, &specs, &arr, &wb.runner_config_without_scheduling());
        graphm_bench::row(&[
            id.name().into(),
            format!("{:.3}", graphm_bench::ns_to_s(without.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(with.makespan_ns)),
            format!("{:.3}", with.makespan_ns / without.makespan_ns),
        ]);
        recs.push(json!({
            "dataset": id.name(),
            "without_ns": without.makespan_ns,
            "with_ns": with.makespan_ns,
        }));
        eprintln!("[{}] done", id.name());
    }
    println!("\n(paper: the strategy always helps; 72.5% of the without-time on Clueweb12)");
    graphm_bench::save_json("fig18_scheduling", &json!({ "rows": recs }));
}
