//! Figure 11 — peak memory usage of the 16-job mix per scheme (normalized).

use graphm_cachesim::keys;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 11", "memory usage for 16 concurrent jobs");
    let results = graphm_bench::main_eval();
    let rows = graphm_bench::scheme_table("Peak resident bytes", &results, |r| {
        r.metrics.get(keys::PEAK_MEMORY_BYTES)
    });
    println!("\n(paper: M sits between S and C — one shared graph copy plus all jobs' state)");
    graphm_bench::save_json("fig11_memory", &json!({ "rows": rows }));
}
