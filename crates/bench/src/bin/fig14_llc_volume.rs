//! Figure 14 — volume of data swapped into the LLC per scheme (normalized).

use graphm_cachesim::keys;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 14", "volume of data swapped into the LLC");
    let results = graphm_bench::main_eval();
    let rows = graphm_bench::scheme_table("LLC fill bytes", &results, |r| {
        r.metrics.get(keys::LLC_FILL_BYTES)
    });
    println!("\n(paper: on UK-union, S fills 65% of C's volume and M only 55% of S's)");
    graphm_bench::save_json("fig14_llc_volume", &json!({ "rows": rows }));
}
