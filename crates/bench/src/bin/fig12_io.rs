//! Figure 12 — total I/O overhead (disk bytes) per scheme (normalized).

use graphm_cachesim::keys;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 12", "total I/O overhead for 16 concurrent jobs");
    let results = graphm_bench::main_eval();
    let rows = graphm_bench::scheme_table("Disk bytes read+written", &results, |r| {
        r.metrics.get(keys::DISK_READ_BYTES) + r.metrics.get(keys::DISK_WRITE_BYTES)
    });
    println!(
        "\n(paper: I/O collapses under M only for out-of-core graphs — 9.2x vs S on UK-union;"
    );
    println!(" in-memory graphs are read once by every scheme)");
    graphm_bench::save_json("fig12_io", &json!({ "rows": rows }));
}
