//! Figure 16 — sensitivity to the submission rate λ (Poisson arrivals)
//! on UK-union: higher λ (denser submissions) favors GraphM more.

use graphm_core::Scheme;
use graphm_workloads::poisson_arrivals;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 16", "performance of GraphM for various lambda (UK-union)");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::UkUnion);
    let n = graphm_bench::jobs();
    let specs = wb.paper_mix(n, graphm_bench::seed());
    // Same unit scaling as the trace harness: submission gaps must be
    // commensurate with the scaled jobs' runtimes for overlap to vary
    // with lambda at all.
    let unit_ns = graphm_workloads::HOUR_NS / (graphm_bench::scale() as f64 * 512.0);
    graphm_bench::header(&["lambda", "S(s)", "C(s)", "M(s)", "M vs C"]);
    let mut recs = Vec::new();
    for lambda in [2.0f64, 4.0, 6.0, 8.0, 10.0] {
        let arr = poisson_arrivals(n, lambda, unit_ns, graphm_bench::seed());
        let s = wb.run(Scheme::Sequential, &specs, &arr);
        let c = wb.run(Scheme::Concurrent, &specs, &arr);
        let m = wb.run(Scheme::Shared, &specs, &arr);
        graphm_bench::row(&[
            format!("{lambda:.0}"),
            format!("{:.3}", graphm_bench::ns_to_s(s.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(c.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(m.makespan_ns)),
            format!("{:.2}x", c.makespan_ns / m.makespan_ns),
        ]);
        recs.push(json!({
            "lambda": lambda, "S_ns": s.makespan_ns, "C_ns": c.makespan_ns, "M_ns": m.makespan_ns,
        }));
        eprintln!("[lambda={lambda}] done");
    }
    println!("\n(paper: higher speedup when jobs are submitted more frequently)");
    graphm_bench::save_json("fig16_lambda", &json!({ "rows": recs }));
}
