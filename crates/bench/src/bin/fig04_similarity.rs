//! Figure 4 — spatial/temporal similarity of concurrent jobs' data
//! accesses on the traced workload: (a) fraction of the graph shared by
//! more than k jobs, (b) mean accesses per touched partition per hour.

use graphm_core::PartitionSource;
use graphm_gridgraph::GridSource;
use graphm_workloads::{similarity_stats, Trace};
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 4", "access similarity on the traced workload");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::LiveJ);
    let source = GridSource::new(wb.engine().grid());
    let trace = Trace::generate(wb.num_vertices(), graphm_bench::seed());
    let num_partitions = source.num_partitions();

    // For each of the first six hours (the paper's x-axis), derive each
    // job's partition access list from its frontier evolution: dense jobs
    // touch every partition every iteration; sparse jobs touch the
    // partitions activated by their roots.
    graphm_bench::header(&[">1 job", ">2 jobs", ">4 jobs", ">8 jobs", "avg-accesses"]);
    let ks = [1usize, 2, 4, 8];
    let mut hours = Vec::new();
    for hour in 0..6 {
        let specs = &trace.hourly_jobs[hour];
        let per_job: Vec<Vec<usize>> = specs
            .iter()
            .map(|spec| {
                let mut job = spec.instantiate(wb.num_vertices(), &wb.out_degrees);
                let mut touched = Vec::new();
                // Trace partition touches across this job's iterations.
                for _ in 0..spec.max_iters.min(8) {
                    let mut any = false;
                    for pid in 0..num_partitions {
                        if source.partition_active(pid, job.active()) {
                            touched.push(pid);
                            any = true;
                            for e in source.load(pid).iter() {
                                if !job.skips_inactive() || job.active().get(e.src as usize) {
                                    job.process_edge(e);
                                }
                            }
                        }
                    }
                    if !any || job.end_iteration() {
                        break;
                    }
                }
                touched
            })
            .collect();
        let (fracs, avg) = similarity_stats(&per_job, num_partitions, &ks);
        graphm_bench::row(&[
            format!("{:.1}%", fracs[0] * 100.0),
            format!("{:.1}%", fracs[1] * 100.0),
            format!("{:.1}%", fracs[2] * 100.0),
            format!("{:.1}%", fracs[3] * 100.0),
            format!("{avg:.1}"),
        ]);
        hours.push(json!({ "hour": hour, "shared_gt": fracs, "avg_accesses": avg }));
    }
    println!("\n(paper: >82% of the graph shared by >1 job; ~7 accesses/hour)");
    graphm_bench::save_json("fig04_similarity", &json!({ "hours": hours }));
}
