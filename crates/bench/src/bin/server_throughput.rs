//! Daemon serving throughput: N concurrent client connections submitting
//! the paper mix against one `graphm-server` over a disk-resident store.
//!
//! The in-process figure harnesses measure *virtual* time; this binary
//! measures the serving path itself — wall-clock jobs/sec through the
//! socket, plus the storage-sharing evidence (total partition loads vs
//! what per-job loading would have cost).
//!
//! Knobs: `GRAPHM_SCALE` (dataset divisor), `GRAPHM_JOBS` (total jobs),
//! `GRAPHM_CLIENTS` (concurrent connections), `GRAPHM_SEED`, and
//! `GRAPHM_MODE` (`deterministic` | `wallclock` — the daemon's execution
//! mode; wallclock runs jobs on one OS thread each with partition
//! prefetch).

use graphm_server::{Client, ExecutionMode, Server, ServerConfig};
use serde_json::json;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn main() {
    graphm_bench::banner(
        "server-throughput",
        "concurrent socket clients vs one shared-store daemon (wall clock)",
    );
    let id = graphm_graph::DatasetId::LiveJ;
    let wb = graphm_bench::workbench(id);
    let clients = graphm_bench::env_usize("GRAPHM_CLIENTS", 8).max(1);
    let total_jobs = graphm_bench::jobs().max(clients);
    let specs = wb.paper_mix(total_jobs, graphm_bench::seed());
    let mode = std::env::var("GRAPHM_MODE")
        .ok()
        .and_then(|m| ExecutionMode::from_name(&m))
        .unwrap_or(ExecutionMode::Deterministic);

    let dir = std::env::temp_dir().join(format!("graphm-server-bench-{}", std::process::id()));
    let manifest = graphm_store::Convert::grid(graphm_bench::GRID_P)
        .write(wb.graph(), &dir)
        .expect("convert to disk");

    let mut config = ServerConfig::new(&dir);
    config.socket_path = Some(dir.join("graphm.sock"));
    config.profile = wb.profile;
    config.batch_window = Duration::from_millis(50);
    config.mode = mode;
    let server = Server::start(config).expect("server starts");
    let socket = server.socket_path().unwrap().to_path_buf();
    eprintln!(
        "[daemon] {} partitions, {} clients x {} jobs, {} mode",
        manifest.partitions.len(),
        clients,
        total_jobs.div_ceil(clients),
        mode.name()
    );

    // Shard the mix across client connections; every client submits its
    // slice, then waits for all of its reports.
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let socket = socket.clone();
        let barrier = Arc::clone(&barrier);
        let slice: Vec<_> = specs.iter().copied().skip(c).step_by(clients).collect();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_unix(&socket).expect("connect");
            barrier.wait();
            let ids: Vec<_> = slice.iter().map(|s| client.submit(s).expect("submit")).collect();
            ids.into_iter().map(|id| client.wait(id).expect("wait")).count()
        }));
    }
    let completed: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let wall_s = start.elapsed().as_secs_f64();

    let stats = server.stats();
    let jobs_per_sec = completed as f64 / wall_s.max(1e-9);
    let per_job_loads = stats.jobs_completed * stats.num_partitions;
    graphm_bench::header(&[
        "clients",
        "jobs",
        "wall_s",
        "jobs_per_s",
        "loads",
        "loads_1pass_per_job",
    ]);
    graphm_bench::row(&[
        clients.to_string(),
        completed.to_string(),
        format!("{wall_s:.3}"),
        format!("{jobs_per_sec:.2}"),
        stats.partition_loads.to_string(),
        per_job_loads.to_string(),
    ]);
    println!(
        "\n(loads = shared (sweep, partition) loads across all rounds; \
         loads_1pass_per_job = what one unshared pass per job would cost)"
    );
    if stats.prefetch_issued > 0 {
        println!(
            "prefetch: {} hints issued, {} loads pre-advised",
            stats.prefetch_issued, stats.prefetch_hits
        );
    }
    graphm_bench::save_json(
        "server_throughput",
        &json!({
            "dataset": id.name(),
            "mode": mode.name(),
            "clients": clients,
            "jobs": completed,
            "wall_s": wall_s,
            "jobs_per_sec": jobs_per_sec,
            "partition_loads": stats.partition_loads,
            "one_pass_per_job_loads": per_job_loads,
            "rounds": stats.rounds,
            "virtual_ns": stats.virtual_ns,
            "prefetch_issued": stats.prefetch_issued,
            "prefetch_hits": stats.prefetch_hits,
        }),
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
