//! Daemon serving throughput: N concurrent client connections submitting
//! the paper mix against one `graphm-server` over a disk-resident store.
//!
//! The in-process figure harnesses measure *virtual* time; this binary
//! measures the serving path itself — wall-clock jobs/sec through the
//! socket, plus the storage-sharing evidence (total partition loads vs
//! what per-job loading would have cost).
//!
//! Knobs: `GRAPHM_SCALE` (dataset divisor), `GRAPHM_JOBS` (total jobs),
//! `GRAPHM_CLIENTS` (concurrent connections), `GRAPHM_SEED`, and
//! `GRAPHM_MODE` (`deterministic` | `wallclock` — the daemon's execution
//! mode; wallclock runs jobs on one OS thread each with partition
//! prefetch).

use graphm_server::{Client, ClientError, ExecutionMode, Priority, Server, ServerConfig};
use serde_json::json;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Submit with bounded retries on typed `overloaded` rejections — the
/// flood tenant is *expected* to be shed; counting retries is part of
/// the measurement.
fn submit_riding_shed(
    client: &mut Client,
    spec: &graphm_workloads::JobSpec,
    tenant: &str,
    priority: Priority,
    shed: &mut u64,
) -> usize {
    loop {
        match client.submit_as(spec, tenant, priority) {
            Ok(id) => return id,
            Err(ClientError::Overloaded(_)) => {
                *shed += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("submit: {e}"),
        }
    }
}

fn main() {
    graphm_bench::banner(
        "server-throughput",
        "concurrent socket clients vs one shared-store daemon (wall clock)",
    );
    let id = graphm_graph::DatasetId::LiveJ;
    let wb = graphm_bench::workbench(id);
    let clients = graphm_bench::env_usize("GRAPHM_CLIENTS", 8).max(1);
    let total_jobs = graphm_bench::jobs().max(clients);
    let specs = wb.paper_mix(total_jobs, graphm_bench::seed());
    let mode = std::env::var("GRAPHM_MODE")
        .ok()
        .and_then(|m| ExecutionMode::from_name(&m))
        .unwrap_or(ExecutionMode::Deterministic);

    let dir = std::env::temp_dir().join(format!("graphm-server-bench-{}", std::process::id()));
    let manifest = graphm_store::Convert::grid(graphm_bench::GRID_P)
        .write(wb.graph(), &dir)
        .expect("convert to disk");

    let mut config = ServerConfig::new(&dir);
    config.socket_path = Some(dir.join("graphm.sock"));
    config.profile = wb.profile;
    config.batch_window = Duration::from_millis(50);
    config.mode = mode;
    let server = Server::start(config).expect("server starts");
    let socket = server.socket_path().unwrap().to_path_buf();
    eprintln!(
        "[daemon] {} partitions, {} clients x {} jobs, {} mode",
        manifest.partitions.len(),
        clients,
        total_jobs.div_ceil(clients),
        mode.name()
    );

    // Shard the mix across client connections; every client submits its
    // slice, then waits for all of its reports.
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let socket = socket.clone();
        let barrier = Arc::clone(&barrier);
        let slice: Vec<_> = specs.iter().copied().skip(c).step_by(clients).collect();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_unix(&socket).expect("connect");
            barrier.wait();
            let ids: Vec<_> = slice.iter().map(|s| client.submit(s).expect("submit")).collect();
            ids.into_iter().map(|id| client.wait(id).expect("wait")).count()
        }));
    }
    let completed: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let wall_s = start.elapsed().as_secs_f64();

    let stats = server.stats();
    let jobs_per_sec = completed as f64 / wall_s.max(1e-9);
    let per_job_loads = stats.jobs_completed * stats.num_partitions;
    graphm_bench::header(&[
        "clients",
        "jobs",
        "wall_s",
        "jobs_per_s",
        "loads",
        "loads_1pass_per_job",
    ]);
    graphm_bench::row(&[
        clients.to_string(),
        completed.to_string(),
        format!("{wall_s:.3}"),
        format!("{jobs_per_sec:.2}"),
        stats.partition_loads.to_string(),
        per_job_loads.to_string(),
    ]);
    println!(
        "\n(loads = shared (sweep, partition) loads across all rounds; \
         loads_1pass_per_job = what one unshared pass per job would cost)"
    );
    if stats.prefetch_issued > 0 {
        println!(
            "prefetch: {} hints issued, {} loads pre-advised",
            stats.prefetch_issued, stats.prefetch_hits
        );
    }
    server.shutdown();

    // Phase 2 — adversarial mix: a batch-heavy tenant floods a daemon
    // running with admission control while a latency-sensitive tenant
    // submits interactive jobs one at a time. The question the series
    // answers: what interactive p99 does the round-size policy hold
    // while the flood is being shed, and how much flood gets shed.
    let mut config = ServerConfig::new(&dir);
    config.socket_path = Some(dir.join("graphm-adv.sock"));
    config.profile = wb.profile;
    config.batch_window = Duration::from_millis(50);
    config.mode = mode;
    config.max_pending = (clients * 4).max(8);
    config.max_batch_per_round = 2;
    let server = Server::start(config).expect("adversarial server starts");
    let socket = server.socket_path().unwrap().to_path_buf();

    let flood_jobs = total_jobs;
    let interactive_jobs = graphm_bench::env_usize("GRAPHM_INTERACTIVE_JOBS", 16).max(1);
    let flood_specs = specs.clone();
    eprintln!(
        "[adversarial] flood {} batch jobs vs {} sequential interactive jobs \
         (max_pending {}, max_batch_per_round {})",
        flood_jobs,
        interactive_jobs,
        (clients * 4).max(8),
        2
    );

    let flood_socket = socket.clone();
    let flood = std::thread::spawn(move || {
        let mut client = Client::connect_unix(&flood_socket).expect("connect");
        let mut shed = 0u64;
        let ids: Vec<_> = flood_specs
            .iter()
            .map(|s| submit_riding_shed(&mut client, s, "flood", Priority::Batch, &mut shed))
            .collect();
        let done = ids.into_iter().map(|id| client.wait(id).expect("wait")).count();
        (done, shed)
    });

    // The latency tenant: interactive PageRank round-trips, timed.
    let mut client = Client::connect_unix(&socket).expect("connect");
    let probe = specs[0];
    let mut latency_ms: Vec<f64> = Vec::with_capacity(interactive_jobs);
    let mut interactive_shed = 0u64;
    for _ in 0..interactive_jobs {
        let t0 = Instant::now();
        let id = submit_riding_shed(
            &mut client,
            &probe,
            "dash",
            Priority::Interactive,
            &mut interactive_shed,
        );
        client.wait(id).expect("wait");
        latency_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let (flood_done, flood_shed) = flood.join().expect("flood client");

    let mut sorted = latency_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let adv_stats = server.stats();
    graphm_bench::header(&["interactive", "p50_ms", "p99_ms", "flood_done", "flood_shed"]);
    graphm_bench::row(&[
        interactive_jobs.to_string(),
        format!("{p50:.1}"),
        format!("{p99:.1}"),
        flood_done.to_string(),
        flood_shed.to_string(),
    ]);
    println!(
        "\n(interactive latency is the full submit->report round trip while the \
         flood tenant saturates admission; flood_shed = typed 'overloaded' \
         rejections absorbed by client backoff)"
    );

    let adversarial = json!({
        "interactive_jobs": interactive_jobs,
        "interactive_latency_ms": latency_ms,
        "interactive_p50_ms": p50,
        "interactive_p99_ms": p99,
        "interactive_shed": interactive_shed,
        "flood_jobs": flood_jobs,
        "flood_completed": flood_done,
        "flood_shed": flood_shed,
        "jobs_shed": adv_stats.jobs_shed,
        "rounds": adv_stats.rounds,
    });
    graphm_bench::save_json(
        "server_throughput",
        &json!({
            "dataset": id.name(),
            "mode": mode.name(),
            "clients": clients,
            "jobs": completed,
            "wall_s": wall_s,
            "jobs_per_sec": jobs_per_sec,
            "partition_loads": stats.partition_loads,
            "one_pass_per_job_loads": per_job_loads,
            "rounds": stats.rounds,
            "virtual_ns": stats.virtual_ns,
            "prefetch_issued": stats.prefetch_issued,
            "prefetch_hits": stats.prefetch_hits,
            "adversarial": adversarial,
        }),
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
