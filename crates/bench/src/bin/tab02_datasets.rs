//! Table 2 — properties of the (stand-in) datasets.

use graphm_graph::DatasetId;
use serde_json::json;

fn main() {
    graphm_bench::banner("Table 2", "graph datasets used in the experiments");
    graphm_bench::header(&["dataset", "paper", "vertices", "edges", "size", "max-deg", "avg-deg"]);
    let mut recs = Vec::new();
    for id in DatasetId::ALL {
        let spec = id.spec();
        let scale = graphm_bench::scale();
        let g = id.generate_scaled(scale);
        let size_mb = g.size_bytes() as f64 / (1 << 20) as f64;
        graphm_bench::row(&[
            id.name().into(),
            id.paper_name().into(),
            g.num_vertices.to_string(),
            g.num_edges().to_string(),
            format!("{size_mb:.1} MB"),
            g.max_out_degree().to_string(),
            format!("{:.1}", g.avg_out_degree()),
        ]);
        recs.push(json!({
            "name": id.name(),
            "paper": id.paper_name(),
            "vertices": g.num_vertices,
            "edges": g.num_edges(),
            "bytes": g.size_bytes(),
            "max_out_degree": g.max_out_degree(),
            "avg_out_degree": g.avg_out_degree(),
            "standin_full_vertices": spec.num_vertices,
            "standin_full_edges": spec.num_edges,
        }));
    }
    println!("\n(paper sizes: LiveJ 526 MB, Orkut 894 MB, Twitter 10.9 GB, UK-union 40.1 GB, Clueweb12 317 GB)");
    graphm_bench::save_json("tab02_datasets", &json!({ "datasets": recs }));
}
