//! Table 4 — 64 concurrent jobs on the other host systems: GraphChi
//! (single machine, out-of-core) and the simulated PowerGraph/Chaos
//! clusters, under S/C/M. Node-group counts follow §5.1.

use graphm_core::{Scheme, Submission};
use graphm_distributed::{run_chaos, run_powergraph, ClusterConfig};
use graphm_graph::DatasetId;
use graphm_graphchi::{run_graphchi, GraphChiEngine};
use graphm_workloads::{generate_mix, MixConfig};
use serde_json::json;
use std::sync::Arc;

fn main() {
    graphm_bench::banner("Table 4", "execution time for other systems integrated with GraphM");
    let n_jobs = graphm_bench::env_usize("GRAPHM_DIST_JOBS", 64);
    let max_iters = 5;
    // §5.1 group counts for 64 jobs per dataset (PowerGraph / Chaos).
    let pg_groups = [8usize, 8, 4, 1, 1];
    let chaos_groups = [8usize, 4, 2, 1, 1];
    let cluster = ClusterConfig::new(graphm_bench::env_usize("GRAPHM_NODES", 128));
    let mut recs = Vec::new();
    graphm_bench::header(&["system", "dataset", "S(s)", "C(s)", "M(s)", "M vs best"]);
    for (di, id) in DatasetId::ALL.into_iter().enumerate() {
        let g = id.generate_scaled(graphm_bench::scale());
        let deg = Arc::new(g.out_degrees());
        let specs = generate_mix(g.num_vertices, &MixConfig::paper(n_jobs, graphm_bench::seed()));
        // GraphChi (single machine, deterministic runner, smaller job
        // count to keep the cache-simulated run tractable).
        let chi_jobs = graphm_bench::env_usize("GRAPHM_CHI_JOBS", 8);
        let (chi, _) = GraphChiEngine::convert(&g, graphm_bench::GRID_P * graphm_bench::GRID_P);
        let mut cfg = graphm_core::RunnerConfig::new(graphm_bench::profile());
        cfg.out_of_core = g.size_bytes() > graphm_bench::profile().memory_bytes;
        let subs = |_: Scheme| -> Vec<Submission> {
            specs[..chi_jobs.min(specs.len())]
                .iter()
                .map(|s| Submission::immediate(s.instantiate(g.num_vertices, &deg)))
                .collect()
        };
        let cs = run_graphchi(Scheme::Sequential, subs(Scheme::Sequential), &chi, &cfg);
        let cc = run_graphchi(Scheme::Concurrent, subs(Scheme::Concurrent), &chi, &cfg);
        let cm = run_graphchi(Scheme::Shared, subs(Scheme::Shared), &chi, &cfg);
        print_triplet("GraphChi", id, cs.makespan_ns, cc.makespan_ns, cm.makespan_ns, &mut recs);

        // PowerGraph and Chaos on the simulated cluster.
        let mk = || -> Vec<Box<dyn graphm_core::GraphJob>> {
            specs.iter().map(|s| s.instantiate(g.num_vertices, &deg)).collect()
        };
        let t = |scheme| {
            run_powergraph(scheme, mk(), &g, cluster, pg_groups[di], max_iters)
                .metrics
                .get(graphm_cachesim::keys::TOTAL_NS)
        };
        print_triplet(
            "PowerGraph",
            id,
            t(Scheme::Sequential),
            t(Scheme::Concurrent),
            t(Scheme::Shared),
            &mut recs,
        );
        let t = |scheme| {
            run_chaos(scheme, mk(), &g, cluster, chaos_groups[di], max_iters)
                .metrics
                .get(graphm_cachesim::keys::TOTAL_NS)
        };
        print_triplet(
            "Chaos",
            id,
            t(Scheme::Sequential),
            t(Scheme::Concurrent),
            t(Scheme::Shared),
            &mut recs,
        );
        eprintln!("[{}] done", id.name());
    }
    println!("\n(paper, LiveJ: GraphChi 2348/776/344s; PowerGraph 92/83/43s; Chaos 224/516/121s —");
    println!(" note Chaos-C slower than Chaos-S, M best everywhere)");
    graphm_bench::save_json("tab04_other_systems", &json!({ "rows": recs }));
}

fn print_triplet(
    system: &str,
    id: DatasetId,
    s: f64,
    c: f64,
    m: f64,
    recs: &mut Vec<serde_json::Value>,
) {
    graphm_bench::row(&[
        system.into(),
        id.name().into(),
        format!("{:.3}", graphm_bench::ns_to_s(s)),
        format!("{:.3}", graphm_bench::ns_to_s(c)),
        format!("{:.3}", graphm_bench::ns_to_s(m)),
        format!("{:.2}x", s.min(c) / m),
    ]);
    recs.push(json!({
        "system": system, "dataset": id.name(), "S_ns": s, "C_ns": c, "M_ns": m,
    }));
}
