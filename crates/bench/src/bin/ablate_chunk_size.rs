//! Ablation — chunk size around the Formula-1 value (×¼, ×½, ×1, ×2, ×4):
//! too small pays synchronization; too large thrashes the LLC (§3.2).

use graphm_cachesim::keys;
use graphm_core::{chunk_size_bytes, Scheme};
use graphm_workloads::immediate_arrivals;
use serde_json::json;

fn main() {
    graphm_bench::banner("Ablation", "chunk size vs the Formula-1 optimum (twitter-sim)");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::Twitter);
    let specs = wb.paper_mix(graphm_bench::jobs(), graphm_bench::seed());
    let arr = immediate_arrivals(specs.len());
    let formula = chunk_size_bytes(&wb.profile, wb.structure_bytes, wb.num_vertices(), 8);
    graphm_bench::header(&["chunk", "bytes", "M(s)", "LLC miss%", "sync(s)"]);
    let mut recs = Vec::new();
    for mult in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let bytes = ((formula as f64 * mult) as usize).max(192);
        let mut cfg = wb.runner_config();
        cfg.chunk_bytes_override = Some(bytes);
        let m = wb.run_with(Scheme::Shared, &specs, &arr, &cfg);
        let miss = m.metrics.get(keys::LLC_MISSES) / m.metrics.get(keys::LLC_ACCESSES).max(1.0);
        graphm_bench::row(&[
            format!("{mult}x"),
            bytes.to_string(),
            format!("{:.3}", graphm_bench::ns_to_s(m.makespan_ns)),
            format!("{:.2}%", miss * 100.0),
            format!("{:.4}", graphm_bench::ns_to_s(m.metrics.get(keys::SYNC_NS))),
        ]);
        recs.push(json!({
            "multiplier": mult, "chunk_bytes": bytes, "M_ns": m.makespan_ns,
            "miss_rate": miss, "sync_ns": m.metrics.get(keys::SYNC_NS),
        }));
        eprintln!("[{mult}x] done");
    }
    println!("\n(expected: the Formula-1 value (1x = {formula} B) is at or near the minimum)");
    graphm_bench::save_json(
        "ablate_chunk_size",
        &json!({ "formula_bytes": formula, "rows": recs }),
    );
}
