//! Ablation — fine-grained synchronization on/off: memory-level sharing
//! alone vs full chunk-level Share-Synchronize (§3.4).

use graphm_cachesim::keys;
use graphm_core::Scheme;
use graphm_workloads::immediate_arrivals;
use serde_json::json;

fn main() {
    graphm_bench::banner("Ablation", "fine-grained synchronization on/off");
    graphm_bench::header(&["dataset", "M-nosync(s)", "M(s)", "nosync miss%", "M miss%"]);
    let mut recs = Vec::new();
    for id in graphm_graph::DatasetId::ALL {
        let wb = graphm_bench::workbench(id);
        let specs = wb.paper_mix(graphm_bench::jobs(), graphm_bench::seed());
        let arr = immediate_arrivals(specs.len());
        let with = wb.run_with(Scheme::Shared, &specs, &arr, &wb.runner_config());
        let mut cfg = wb.runner_config();
        cfg.fine_sync = false;
        let without = wb.run_with(Scheme::Shared, &specs, &arr, &cfg);
        let rate = |r: &graphm_core::RunReport| {
            r.metrics.get(keys::LLC_MISSES) / r.metrics.get(keys::LLC_ACCESSES).max(1.0) * 100.0
        };
        graphm_bench::row(&[
            id.name().into(),
            format!("{:.3}", graphm_bench::ns_to_s(without.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(with.makespan_ns)),
            format!("{:.2}%", rate(&without)),
            format!("{:.2}%", rate(&with)),
        ]);
        recs.push(json!({
            "dataset": id.name(),
            "nosync_ns": without.makespan_ns, "with_ns": with.makespan_ns,
            "nosync_miss": rate(&without), "with_miss": rate(&with),
        }));
        eprintln!("[{}] done", id.name());
    }
    println!("\n(expected: memory-level sharing already helps I/O; chunk sync adds the LLC wins)");
    graphm_bench::save_json("ablate_sync", &json!({ "rows": recs }));
}
