//! Figure 15 — throughput of the real-trace workload (jobs submitted per
//! the weekly concurrency curve) under the three schemes, per dataset.

use graphm_workloads::{Trace, HOUR_NS};
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 15", "performance of the jobs for the real trace");
    // A slice of the weekly trace: the first N hours' jobs, submitted at
    // their hour marks (virtual time), on every dataset.
    let hours = graphm_bench::env_usize("GRAPHM_TRACE_HOURS", 3);
    let mut recs = Vec::new();
    graphm_bench::header(&["dataset", "jobs", "S(s)", "C(s)", "M(s)", "M vs S", "M vs C"]);
    for id in graphm_graph::DatasetId::ALL {
        let wb = graphm_bench::workbench(id);
        let trace = Trace::generate(wb.num_vertices(), graphm_bench::seed());
        let mut specs = Vec::new();
        let mut arrivals = Vec::new();
        // Scale the virtual hour so consecutive batches overlap on the
        // scaled datasets the way hour-long batches do in production
        // (the paper's jobs run for sizable fractions of an hour; ours
        // finish ~10^4x faster, so the hour shrinks accordingly).
        let hour_ns = HOUR_NS / (graphm_bench::scale() as f64 * 512.0);
        for h in 0..hours {
            for spec in &trace.hourly_jobs[h] {
                specs.push(*spec);
                arrivals.push(h as f64 * hour_ns);
            }
        }
        let s = wb.run(graphm_core::Scheme::Sequential, &specs, &arrivals);
        let c = wb.run(graphm_core::Scheme::Concurrent, &specs, &arrivals);
        let m = wb.run(graphm_core::Scheme::Shared, &specs, &arrivals);
        graphm_bench::row(&[
            id.name().into(),
            specs.len().to_string(),
            format!("{:.3}", graphm_bench::ns_to_s(s.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(c.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(m.makespan_ns)),
            format!("{:.2}x", s.makespan_ns / m.makespan_ns),
            format!("{:.2}x", c.makespan_ns / m.makespan_ns),
        ]);
        recs.push(json!({
            "dataset": id.name(), "jobs": specs.len(),
            "S_ns": s.makespan_ns, "C_ns": c.makespan_ns, "M_ns": m.makespan_ns,
        }));
        eprintln!("[{}] done", id.name());
    }
    println!("\n(paper: M improves throughput 1.5-7.1x vs S and 1.48-9.8x vs C on the trace)");
    graphm_bench::save_json("fig15_real_trace", &json!({ "rows": recs }));
}
