//! Figure 17 — 16 BFS or 16 SSSP jobs whose roots are sampled within
//! 1–5 hops of a base vertex (LiveJ): closer roots mean stronger access
//! similarity and bigger GraphM wins.

use graphm_core::Scheme;
use graphm_workloads::{immediate_arrivals, roots_within_hops, AlgoKind, JobSpec};
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 17", "impact of BFS/SSSP root distance (livej-sim)");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::LiveJ);
    let n = graphm_bench::jobs();
    // Base root: a well-connected vertex (max out-degree).
    let deg = wb.graph().out_degrees();
    let base = deg.iter().enumerate().max_by_key(|(_, &d)| d).map(|(v, _)| v as u32).unwrap_or(0);
    let mut recs = Vec::new();
    for kind in [AlgoKind::Bfs, AlgoKind::Sssp] {
        println!("\n{} jobs:", kind.name());
        graphm_bench::header(&["hops", "S(s)", "C(s)", "M(s)", "M vs C"]);
        for hops in 1..=5usize {
            let roots =
                roots_within_hops(wb.graph(), base, hops, n, graphm_bench::seed() + hops as u64);
            let specs: Vec<JobSpec> = roots
                .iter()
                .map(|&root| JobSpec { kind, damping: 0.85, root, max_iters: 100 })
                .collect();
            let arr = immediate_arrivals(n);
            let s = wb.run(Scheme::Sequential, &specs, &arr);
            let c = wb.run(Scheme::Concurrent, &specs, &arr);
            let m = wb.run(Scheme::Shared, &specs, &arr);
            graphm_bench::row(&[
                hops.to_string(),
                format!("{:.3}", graphm_bench::ns_to_s(s.makespan_ns)),
                format!("{:.3}", graphm_bench::ns_to_s(c.makespan_ns)),
                format!("{:.3}", graphm_bench::ns_to_s(m.makespan_ns)),
                format!("{:.2}x", c.makespan_ns / m.makespan_ns),
            ]);
            recs.push(json!({
                "algo": kind.name(), "hops": hops,
                "S_ns": s.makespan_ns, "C_ns": c.makespan_ns, "M_ns": m.makespan_ns,
            }));
        }
    }
    println!("\n(paper: closer roots -> stronger similarity -> higher speedup)");
    graphm_bench::save_json("fig17_root_hops", &json!({ "rows": recs }));
}
