//! Figure 21 — scalability of the distributed schemes: 64 jobs on
//! UK-union over PowerGraph and Chaos, sweeping the node count 64..128.
//! Speedups are relative to each scheme's own 64-node run, as the paper
//! plots them.

use graphm_core::Scheme;
use graphm_distributed::{run_chaos, run_powergraph, ClusterConfig};
use graphm_workloads::{generate_mix, MixConfig};
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 21", "scalability of the distributed schemes (ukunion-sim)");
    let g = graphm_graph::DatasetId::UkUnion.generate_scaled(graphm_bench::scale());
    let deg = std::sync::Arc::new(g.out_degrees());
    let n_jobs = graphm_bench::env_usize("GRAPHM_DIST_JOBS", 64);
    let max_iters = 5;
    let mk_jobs = || -> Vec<Box<dyn graphm_core::GraphJob>> {
        generate_mix(g.num_vertices, &MixConfig::paper(n_jobs, graphm_bench::seed()))
            .iter()
            .map(|s| s.instantiate(g.num_vertices, &deg))
            .collect()
    };
    let nodes_axis = [64usize, 80, 96, 102, 128]; // the paper's x-axis
    let mut recs = Vec::new();
    for (engine_name, groups) in [("PowerGraph", 1usize), ("Chaos", 1usize)] {
        println!("\n{engine_name}:");
        graphm_bench::header(&["nodes", "S", "C", "M", "(speedup vs 64 nodes)"]);
        let mut base: Option<(f64, f64, f64)> = None;
        for &nodes in &nodes_axis {
            let cluster = ClusterConfig::new(nodes);
            let run = |scheme| match engine_name {
                "PowerGraph" => run_powergraph(scheme, mk_jobs(), &g, cluster, groups, max_iters),
                _ => run_chaos(scheme, mk_jobs(), &g, cluster, groups, max_iters),
            };
            let s = run(Scheme::Sequential).metrics.get(graphm_cachesim::keys::TOTAL_NS);
            let c = run(Scheme::Concurrent).metrics.get(graphm_cachesim::keys::TOTAL_NS);
            let m = run(Scheme::Shared).metrics.get(graphm_cachesim::keys::TOTAL_NS);
            let b = *base.get_or_insert((s, c, m));
            graphm_bench::row(&[
                nodes.to_string(),
                format!("{:.2}x", b.0 / s),
                format!("{:.2}x", b.1 / c),
                format!("{:.2}x", b.2 / m),
                String::new(),
            ]);
            recs.push(json!({
                "engine": engine_name, "nodes": nodes,
                "S_ns": s, "C_ns": c, "M_ns": m,
                "S_speedup": b.0 / s, "C_speedup": b.1 / c, "M_speedup": b.2 / m,
            }));
            eprintln!("[{engine_name} {nodes} nodes] done");
        }
    }
    println!("\n(paper: all schemes gain from 64->128 nodes; the M variants scale best)");
    graphm_bench::save_json("fig21_distributed_scaling", &json!({ "rows": recs }));
}
