//! Figure 2 — number of concurrent jobs traced on a social network over
//! one week (the motivation trace: peak > 30, mean ≈ 16).

use graphm_workloads::weekly_concurrency;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 2", "concurrent jobs over one traced week");
    let curve = weekly_concurrency(graphm_bench::seed());
    graphm_bench::header(&["hour", "jobs", "bar"]);
    for (h, &n) in curve.iter().enumerate().step_by(4) {
        graphm_bench::row(&[h.to_string(), n.to_string(), "#".repeat(n)]);
    }
    let mean = curve.iter().sum::<usize>() as f64 / curve.len() as f64;
    let peak = *curve.iter().max().unwrap();
    println!("\npeak = {peak} concurrent jobs (paper: >30)");
    println!("mean = {mean:.1} concurrent jobs (paper: ~16)");
    graphm_bench::save_json("fig02_trace", &json!({ "curve": curve, "peak": peak, "mean": mean }));
}
