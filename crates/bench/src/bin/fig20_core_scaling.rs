//! Figure 20 — 16 jobs on twitter-sim while sweeping the (virtual) core
//! count 1..16.

use graphm_core::Scheme;
use graphm_workloads::immediate_arrivals;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 20", "scaling with the number of CPU cores (twitter-sim)");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::Twitter);
    let specs = wb.paper_mix(graphm_bench::jobs(), graphm_bench::seed());
    let arr = immediate_arrivals(specs.len());
    graphm_bench::header(&["cores", "S(s)", "C(s)", "M(s)"]);
    let mut recs = Vec::new();
    for cores in [1usize, 2, 4, 8, 16] {
        let mut cfg = wb.runner_config();
        cfg.profile.cores = cores;
        let s = wb.run_with(Scheme::Sequential, &specs, &arr, &cfg);
        let c = wb.run_with(Scheme::Concurrent, &specs, &arr, &cfg);
        let m = wb.run_with(Scheme::Shared, &specs, &arr, &cfg);
        graphm_bench::row(&[
            cores.to_string(),
            format!("{:.3}", graphm_bench::ns_to_s(s.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(c.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(m.makespan_ns)),
        ]);
        recs.push(json!({
            "cores": cores, "S_ns": s.makespan_ns, "C_ns": c.makespan_ns, "M_ns": m.makespan_ns,
        }));
        eprintln!("[{cores} cores] done");
    }
    println!("\n(paper: M leads at every core count, and widens with more cores)");
    graphm_bench::save_json("fig20_core_scaling", &json!({ "rows": recs }));
}
