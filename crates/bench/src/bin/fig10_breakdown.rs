//! Figure 10 — execution-time breakdown: graph processing time vs data
//! accessing time, per scheme and dataset.

use graphm_cachesim::keys;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 10", "execution time breakdown (processing vs data access)");
    let results = graphm_bench::main_eval();
    graphm_bench::header(&["dataset", "scheme", "process(s)", "access(s)", "access share"]);
    let mut recs = Vec::new();
    for (id, s, c, m) in &results {
        for r in [s, c, m] {
            let compute = graphm_bench::ns_to_s(r.metrics.get(keys::COMPUTE_NS));
            let access = graphm_bench::ns_to_s(r.metrics.get(keys::DATA_ACCESS_NS));
            graphm_bench::row(&[
                id.name().into(),
                format!("GridGraph-{}", r.scheme.suffix()),
                format!("{compute:.3}"),
                format!("{access:.3}"),
                format!("{:.1}%", access / (access + compute).max(1e-12) * 100.0),
            ]);
            recs.push(json!({
                "dataset": id.name(), "scheme": r.scheme.suffix(),
                "process_s": compute, "access_s": access,
            }));
        }
    }
    println!(
        "\n(paper: M cuts data-access time most where graphs exceed memory — 11.5x on UK-union)"
    );
    graphm_bench::save_json("fig10_breakdown", &json!({ "rows": recs }));
}
