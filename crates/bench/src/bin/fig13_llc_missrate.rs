//! Figure 13 — LLC miss rate per scheme and dataset.

use graphm_cachesim::keys;
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 13", "LLC miss rate for 16 concurrent jobs");
    let results = graphm_bench::main_eval();
    graphm_bench::header(&["dataset", "GridGraph-S", "GridGraph-C", "GridGraph-M"]);
    let mut recs = Vec::new();
    for (id, s, c, m) in &results {
        let rate = |r: &graphm_core::RunReport| {
            r.metrics.get(keys::LLC_MISSES) / r.metrics.get(keys::LLC_ACCESSES).max(1.0) * 100.0
        };
        let (rs, rc, rm) = (rate(s), rate(c), rate(m));
        graphm_bench::row(&[
            id.name().into(),
            format!("{rs:.2}%"),
            format!("{rc:.2}%"),
            format!("{rm:.2}%"),
        ]);
        recs.push(json!({ "dataset": id.name(), "S": rs, "C": rc, "M": rm }));
    }
    println!("\n(paper: UK-union — 45.3% S, 43.3% C, 15.69% M)");
    graphm_bench::save_json("fig13_llc_missrate", &json!({ "rows": recs }));
}
