//! Table 3 — preprocessing time of GridGraph vs GridGraph-M (the grid
//! conversion plus GraphM's Formula-1 sizing and Algorithm-1 labelling),
//! and the §5.2 extra-space-overhead block.

use graphm_core::GraphMConfig;
use graphm_graph::DatasetId;
use graphm_gridgraph::{graphm_preprocess_wall, GridGraphEngine};
use serde_json::json;

fn main() {
    graphm_bench::banner("Table 3", "preprocessing time (wall-clock) and labelling overhead");
    graphm_bench::header(&[
        "dataset",
        "GridGraph(ms)",
        "GridGraph-M(ms)",
        "extra",
        "label bytes",
        "space ovh",
    ]);
    let mut recs = Vec::new();
    for id in DatasetId::ALL {
        let g = id.generate_scaled(graphm_bench::scale());
        let (engine, convert) = GridGraphEngine::convert(&g, graphm_bench::GRID_P);
        let mut cfg = GraphMConfig::new(graphm_bench::profile());
        cfg.out_of_core = g.size_bytes() > graphm_bench::profile().memory_bytes;
        let (gm, label) = graphm_preprocess_wall(&engine, cfg);
        let base_ms = convert.as_secs_f64() * 1e3;
        let with_ms = (convert + label).as_secs_f64() * 1e3;
        let ovh = gm.overhead_ratio(g.size_bytes());
        graphm_bench::row(&[
            id.name().into(),
            format!("{base_ms:.1}"),
            format!("{with_ms:.1}"),
            format!("+{:.1}%", (with_ms / base_ms - 1.0) * 100.0),
            format!("{:.2} MB", gm.overhead_bytes() as f64 / (1 << 20) as f64),
            format!("{:.1}%", ovh * 100.0),
        ]);
        recs.push(json!({
            "dataset": id.name(), "convert_ms": base_ms, "with_graphm_ms": with_ms,
            "chunk_table_bytes": gm.overhead_bytes(), "space_overhead": ovh,
            "chunk_bytes": gm.chunk_bytes,
        }));
    }
    println!(
        "\n(paper: labelling adds ~4% in-memory / ~16% out-of-core; space overhead 5.5%-19.2%,"
    );
    println!(" highest for Twitter whose max out-degree dwarfs its average)");
    graphm_bench::save_json("tab03_preprocessing", &json!({ "rows": recs }));
}
