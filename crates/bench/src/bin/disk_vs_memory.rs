//! Disk-resident store vs in-memory source under the S/C/M schemes.
//!
//! Converts the dataset once with the store's `Convert()` pipeline, then
//! runs the same paper mix through the in-memory `GridSource` and the
//! mmap-backed `DiskGridSource`. The runtime is identical by construction
//! (both implement `PartitionSource` with the same semantics; the disk
//! path charges *real* per-partition bytes from the manifest), so the
//! interesting rows are: results bit-identical, virtual metrics identical,
//! and the wall-clock conversion/open costs of the disk path.

use graphm_cachesim::keys;
use graphm_store::Convert;
use graphm_workloads::Workbench;
use serde_json::json;
use std::time::Instant;

fn main() {
    graphm_bench::banner(
        "disk-vs-memory",
        "mmap-backed DiskGridSource vs in-memory GridSource, paper mix",
    );
    let id = graphm_graph::DatasetId::LiveJ;
    let wb_mem = graphm_bench::workbench(id);
    let specs = wb_mem.paper_mix(graphm_bench::jobs(), graphm_bench::seed());

    let dir = std::env::temp_dir().join(format!("graphm-disk-bench-{}", std::process::id()));
    let t = Instant::now();
    let manifest =
        Convert::grid(graphm_bench::GRID_P).write(wb_mem.graph(), &dir).expect("convert to disk");
    let convert_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let wb_disk = Workbench::from_disk(&dir, wb_mem.profile).expect("open disk store");
    let open_s = t.elapsed().as_secs_f64();
    eprintln!(
        "[store] {} partitions, {:.1} MiB on disk, convert {convert_s:.3}s, open {open_s:.3}s",
        manifest.partitions.len(),
        manifest.graph_bytes() as f64 / (1 << 20) as f64,
    );

    graphm_bench::header(&["scheme", "mem_ns", "disk_ns", "disk_read_B", "identical"]);
    let mut rows = Vec::new();
    for scheme in [
        graphm_core::Scheme::Sequential,
        graphm_core::Scheme::Concurrent,
        graphm_core::Scheme::Shared,
    ] {
        let arr = graphm_workloads::immediate_arrivals(specs.len());
        let mem = wb_mem.run(scheme, &specs, &arr);
        let disk = wb_disk.run(scheme, &specs, &arr);
        let identical = mem.jobs.len() == disk.jobs.len()
            && mem.jobs.iter().zip(&disk.jobs).all(|(a, b)| {
                a.values.len() == b.values.len()
                    && a.values.iter().zip(&b.values).all(|(x, y)| x.to_bits() == y.to_bits())
            });
        graphm_bench::row(&[
            scheme.suffix().to_string(),
            graphm_bench::f(mem.makespan_ns),
            graphm_bench::f(disk.makespan_ns),
            graphm_bench::f(disk.metrics.get(keys::DISK_READ_BYTES)),
            identical.to_string(),
        ]);
        assert!(identical, "disk and memory sources must agree bit-for-bit");
        rows.push(json!({
            "scheme": scheme.suffix(),
            "mem_ns": mem.makespan_ns,
            "disk_ns": disk.makespan_ns,
            "disk_read_bytes": disk.metrics.get(keys::DISK_READ_BYTES),
            "identical": identical,
        }));
    }
    println!("\n(disk-backed partitions stream from mmap'd segments; byte counts come from the manifest)");

    // Residency divergence: the *virtual* metrics above are identical by
    // design, but the page-cache model is where disk and memory sources
    // now genuinely differ. An in-memory source has nothing to page; the
    // disk source reports resident bytes, and once the store exceeds the
    // memory budget an identical workload shows nonzero evictions — with
    // job values still bit-identical.
    let disk_src = wb_disk.disk_source().expect("disk-backed workbench");
    let in_mem = disk_src.residency_stats();
    assert!(in_mem.resident_bytes > 0, "streamed segments must be modeled resident");
    assert_eq!(in_mem.evictions, 0, "an in-memory-sized (unlimited) budget never evicts");
    let store_bytes: u64 = manifest.partitions.iter().map(|p| p.byte_len).sum();
    disk_src.set_memory_budget(store_bytes / 2);
    let arr = graphm_workloads::immediate_arrivals(specs.len());
    let mem_ref = wb_mem.run(graphm_core::Scheme::Shared, &specs, &arr);
    let disk_ooc = wb_disk.run(graphm_core::Scheme::Shared, &specs, &arr);
    let ooc = disk_src.residency_stats();
    disk_src.set_memory_budget(0);
    assert!(ooc.evictions > 0, "store > memory budget must evict behind the frontier");
    assert!(ooc.evicted_bytes > 0);
    for (a, b) in mem_ref.jobs.iter().zip(&disk_ooc.jobs) {
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "eviction must not change job values");
        }
    }
    println!(
        "residency: unbudgeted resident {} B / 0 evictions; budget {} B -> resident {} B, \
         {} evictions ({} B), job values bit-identical",
        in_mem.resident_bytes,
        store_bytes / 2,
        ooc.resident_bytes,
        ooc.evictions,
        ooc.evicted_bytes
    );

    let residency_json = json!({
        "unbudgeted_resident_bytes": in_mem.resident_bytes,
        "unbudgeted_evictions": in_mem.evictions,
        "budget_bytes": store_bytes / 2,
        "out_of_core_resident_bytes": ooc.resident_bytes,
        "out_of_core_evicted_bytes": ooc.evicted_bytes,
        "out_of_core_evictions": ooc.evictions,
    });
    graphm_bench::save_json(
        "disk_vs_memory",
        &json!({
            "dataset": id.name(),
            "partitions": manifest.partitions.len(),
            "store_bytes": manifest.graph_bytes(),
            "convert_s": convert_s,
            "open_s": open_s,
            "rows": rows,
            "residency": residency_json,
        }),
    );
    std::fs::remove_dir_all(&dir).ok();
}
