//! Figure 19 — 1/2/4/8/16 concurrent PageRank jobs on Clueweb12 under the
//! three schemes, plus the §5.6 synchronization-cost share.

use graphm_cachesim::keys;
use graphm_core::Scheme;
use graphm_workloads::{immediate_arrivals, AlgoKind, MixConfig};
use serde_json::json;

fn main() {
    graphm_bench::banner("Figure 19", "scaling with the number of jobs (clueweb-sim, PageRank)");
    let wb = graphm_bench::workbench(graphm_graph::DatasetId::Clueweb);
    graphm_bench::header(&["jobs", "S(s)", "C(s)", "M(s)", "M vs S", "sync share"]);
    let mut recs = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let specs = graphm_workloads::generate_mix(
            wb.num_vertices(),
            &MixConfig::uniform(AlgoKind::PageRank, n, graphm_bench::seed()),
        );
        let arr = immediate_arrivals(n);
        let s = wb.run(Scheme::Sequential, &specs, &arr);
        let c = wb.run(Scheme::Concurrent, &specs, &arr);
        let m = wb.run(Scheme::Shared, &specs, &arr);
        let sync_share = m.metrics.get(keys::SYNC_NS)
            / (m.metrics.get(keys::COMPUTE_NS) + m.metrics.get(keys::DATA_ACCESS_NS)).max(1.0);
        graphm_bench::row(&[
            n.to_string(),
            format!("{:.3}", graphm_bench::ns_to_s(s.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(c.makespan_ns)),
            format!("{:.3}", graphm_bench::ns_to_s(m.makespan_ns)),
            format!("{:.2}x", s.makespan_ns / m.makespan_ns),
            format!("{:.1}%", sync_share * 100.0),
        ]);
        recs.push(json!({
            "jobs": n, "S_ns": s.makespan_ns, "C_ns": c.makespan_ns, "M_ns": m.makespan_ns,
            "sync_share": sync_share,
        }));
        eprintln!("[{n} jobs] done");
    }
    println!("\n(paper: speedups 1.79/3.04/4.92/5.94x at 2/4/8/16 jobs; sync 7.1-14.6% of time;");
    println!(" with one job the schemes roughly tie)");
    graphm_bench::save_json("fig19_job_scaling", &json!({ "rows": recs }));
}
