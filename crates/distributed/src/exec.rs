//! Shared execution machinery for the simulated distributed engines.
//!
//! The algorithms run for real over node-partitioned edges (results are
//! bit-identical to the single-machine engines' fixpoints); elapsed time
//! is assembled from the [`crate::cluster::ClusterConfig`] cost model.

use graphm_cachesim::Metrics;
use graphm_core::GraphJob;
use graphm_graph::Edge;
use std::sync::Arc;

/// Per-iteration execution statistics for one job.
#[derive(Clone, Debug)]
pub struct DistIterStats {
    /// Edges processed (active source) per node.
    pub processed_per_node: Vec<u64>,
    /// Vertices whose state changed this iteration (drives replica-sync
    /// traffic in PowerGraph and remote writes in Chaos).
    pub updated_vertices: f64,
    /// Whether the job reported convergence.
    pub converged: bool,
}

/// Streams one full iteration of `job` over the nodes' edge stripes
/// (node 0 first — deterministic), then ends the iteration.
pub fn run_iteration(job: &mut dyn GraphJob, node_edges: &[Arc<Vec<Edge>>]) -> DistIterStats {
    let mut processed = vec![0u64; node_edges.len()];
    for (nid, edges) in node_edges.iter().enumerate() {
        for e in edges.iter() {
            if !job.skips_inactive() || job.active().get(e.src as usize) {
                job.process_edge(e);
                processed[nid] += 1;
            }
        }
    }
    let converged = job.end_iteration();
    // After end_iteration the active bitmap holds the *next* frontier =
    // the vertices updated this iteration; dense jobs update everything.
    let updated =
        if job.skips_inactive() { job.active().count() as f64 } else { job.active().len() as f64 };
    DistIterStats { processed_per_node: processed, updated_vertices: updated, converged }
}

/// Outcome of a distributed multi-job run.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// Aggregate counters (`total_ns`, `net_bytes`, `disk_read_bytes`,
    /// `peak_memory_bytes`, ...).
    pub metrics: Metrics,
    /// Per-job virtual completion times (from their group's clock).
    pub per_job_ns: Vec<f64>,
    /// Per-job final vertex values.
    pub results: Vec<Vec<f64>>,
    /// Per-job iteration counts.
    pub iterations: Vec<usize>,
}

/// Bytes of one replica-synchronization message (vertex id + value +
/// header), shared by both engines' cost models.
pub const MSG_BYTES: f64 = 16.0;
