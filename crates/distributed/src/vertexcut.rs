//! Vertex-cut edge partitioning (PowerGraph's placement model).
//!
//! PowerGraph assigns *edges* to nodes and replicates *vertices* wherever
//! they have edges; one replica is the master. Communication per GAS
//! iteration is proportional to the replicas of updated vertices, so the
//! replication factor is the quantity that drives PowerGraph's network
//! cost — and it grows with the node count, which is why Figure 21's
//! scaling curves flatten.

use graphm_graph::{Edge, EdgeList, VertexId};
use std::sync::Arc;

/// Deterministic 64-bit mix for placement hashing.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A vertex-cut placement of a graph over `nodes` nodes.
pub struct VertexCut {
    /// Edges held by each node.
    pub node_edges: Vec<Arc<Vec<Edge>>>,
    /// Number of replicas per vertex (≥ 1 for non-isolated vertices).
    pub replicas: Vec<u32>,
    /// Mean replicas over vertices that have any edge.
    pub replication_factor: f64,
    /// Vertex count.
    pub num_vertices: VertexId,
}

impl VertexCut {
    /// Random (hash-based) vertex-cut, PowerGraph's default placement.
    pub fn random(graph: &EdgeList, nodes: usize) -> VertexCut {
        assert!(nodes >= 1);
        let n = graph.num_vertices as usize;
        let mut node_edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes];
        // Presence bitsets per vertex would be O(V * nodes); track replica
        // sets compactly with a per-vertex sorted small-vec of node ids.
        let mut presence: Vec<Vec<u16>> = vec![Vec::new(); n];
        for (i, e) in graph.edges.iter().enumerate() {
            let node =
                (mix(i as u64 ^ ((e.src as u64) << 32 | e.dst as u64)) % nodes as u64) as usize;
            node_edges[node].push(*e);
            for v in [e.src as usize, e.dst as usize] {
                let nid = node as u16;
                if let Err(pos) = presence[v].binary_search(&nid) {
                    presence[v].insert(pos, nid);
                }
            }
        }
        let replicas: Vec<u32> = presence.iter().map(|p| p.len() as u32).collect();
        let placed: Vec<u32> = replicas.iter().copied().filter(|&r| r > 0).collect();
        let replication_factor = if placed.is_empty() {
            1.0
        } else {
            placed.iter().map(|&r| r as f64).sum::<f64>() / placed.len() as f64
        };
        VertexCut {
            node_edges: node_edges.into_iter().map(Arc::new).collect(),
            replicas,
            replication_factor,
            num_vertices: graph.num_vertices,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.node_edges.len()
    }

    /// Total edges placed.
    pub fn num_edges(&self) -> usize {
        self.node_edges.iter().map(|e| e.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn placement_preserves_edges() {
        let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 3);
        let vc = VertexCut::random(&g, 8);
        assert_eq!(vc.num_edges(), 1500);
        assert_eq!(vc.nodes(), 8);
        // Multiset equality.
        let mut orig: Vec<(u32, u32)> = g.edges.iter().map(|e| (e.src, e.dst)).collect();
        let mut got: Vec<(u32, u32)> =
            vc.node_edges.iter().flat_map(|ne| ne.iter().map(|e| (e.src, e.dst))).collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
    }

    #[test]
    fn replication_grows_with_nodes() {
        let g = generators::rmat(300, 4000, generators::RmatParams::SOCIAL, 4);
        let rf4 = VertexCut::random(&g, 4).replication_factor;
        let rf32 = VertexCut::random(&g, 32).replication_factor;
        assert!(rf32 > rf4, "rf32 {rf32} vs rf4 {rf4}");
        assert!(rf4 >= 1.0);
    }

    #[test]
    fn single_node_has_no_replication() {
        let g = generators::ring(50);
        let vc = VertexCut::random(&g, 1);
        assert!((vc.replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn placement_is_balanced() {
        let g = generators::erdos_renyi(500, 8000, 9);
        let vc = VertexCut::random(&g, 8);
        let sizes: Vec<usize> = vc.node_edges.iter().map(|e| e.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "hash placement should balance: {sizes:?}");
    }
}
