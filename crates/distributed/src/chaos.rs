//! The Chaos-style engine (scale-out edge streaming) with S/C/M schemes.
//!
//! Chaos [Roy et al., SOSP '15] extends X-Stream to a cluster: edges are
//! striped over the nodes' *secondary storage* with no locality, and every
//! iteration streams them back in; vertex state lives wherever its stripe
//! landed, so most state accesses cross the network. Consequences the cost
//! model reproduces:
//!
//! * every iteration pays a full disk re-stream (out-of-core by design);
//! * scheme `-C` multiplies that stream per job **and** interleaves the
//!   streams on the same disks (seek interference) — the reason Table 4
//!   shows Chaos-C *slower than Chaos-S*;
//! * scheme `-M` streams once per sweep for all jobs in a group.

use crate::cluster::{assign_jobs, group_sizes, ClusterConfig, NetStats};
use crate::exec::{run_iteration, DistReport, MSG_BYTES};
use graphm_cachesim::{keys, Metrics};
use graphm_core::{GraphJob, Scheme};
use graphm_graph::{Edge, EdgeList, EDGE_BYTES};
use std::collections::HashMap;
use std::sync::Arc;

/// Stripes edges round-robin across `nodes` (Chaos's storage layout).
pub fn stripe(graph: &EdgeList, nodes: usize) -> Vec<Arc<Vec<Edge>>> {
    assert!(nodes >= 1);
    let mut stripes: Vec<Vec<Edge>> = vec![Vec::new(); nodes];
    for (i, e) in graph.edges.iter().enumerate() {
        stripes[i % nodes].push(*e);
    }
    stripes.into_iter().map(Arc::new).collect()
}

struct JobCost {
    compute_ns: f64,
    net_ns: f64,
    net: NetStats,
    iterations: usize,
    values: Vec<f64>,
}

fn drive_job(
    job: &mut dyn GraphJob,
    stripes: &[Arc<Vec<Edge>>],
    cluster: &ClusterConfig,
    group_nodes: usize,
    max_iters: usize,
) -> JobCost {
    let mut cost = JobCost {
        compute_ns: 0.0,
        net_ns: 0.0,
        net: NetStats::default(),
        iterations: 0,
        values: Vec::new(),
    };
    let cost_factor = job.edge_cost_factor();
    let p_remote = (group_nodes as f64 - 1.0) / group_nodes as f64;
    for _ in 0..max_iters {
        let stats = run_iteration(job, stripes);
        cost.iterations += 1;
        let busiest = stats.processed_per_node.iter().copied().max().unwrap_or(0) as f64;
        let processed: u64 = stats.processed_per_node.iter().sum();
        cost.compute_ns +=
            busiest * cluster.edge_compute_ns * cost_factor / cluster.cores_per_node as f64;
        // No locality: reading the source value and pushing the update
        // each cross the network with probability (n-1)/n.
        let msgs = processed as f64 * p_remote * 2.0;
        let bytes = msgs * MSG_BYTES;
        cost.net.messages += msgs;
        cost.net.bytes += bytes;
        cost.net_ns += cluster.net_ns(bytes, 2.0, group_nodes);
        if stats.converged {
            break;
        }
    }
    cost.values = job.vertex_values();
    cost
}

/// Runs a Chaos job mix under `scheme` with the given node grouping.
pub fn run_chaos(
    scheme: Scheme,
    mut jobs: Vec<Box<dyn GraphJob>>,
    graph: &EdgeList,
    cluster: ClusterConfig,
    groups: usize,
    max_iters: usize,
) -> DistReport {
    let sizes = group_sizes(cluster.nodes, groups);
    let placement = assign_jobs(jobs.len(), sizes.len());
    let graph_bytes = graph.num_edges() as f64 * EDGE_BYTES as f64;
    let mut stripes_by_size: HashMap<usize, Vec<Arc<Vec<Edge>>>> = HashMap::new();
    for &s in &sizes {
        stripes_by_size.entry(s).or_insert_with(|| stripe(graph, s));
    }

    let mut per_job_ns = vec![0.0; jobs.len()];
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); jobs.len()];
    let mut iterations = vec![0usize; jobs.len()];
    let mut metrics = Metrics::new();
    let mut makespan: f64 = 0.0;
    let mut net_total = NetStats::default();
    let mut disk_bytes: f64 = 0.0;
    let mut job_slots: Vec<Option<Box<dyn GraphJob>>> = jobs.drain(..).map(Some).collect();

    for (gi, job_ids) in placement.iter().enumerate() {
        if job_ids.is_empty() {
            continue;
        }
        let nodes_g = sizes[gi];
        let stripes = &stripes_by_size[&nodes_g];
        let mut group_compute = 0.0;
        let mut group_net_ns = 0.0;
        let mut group_sequential = 0.0;
        let mut finish_offsets: Vec<(usize, f64)> = Vec::new();
        let mut iters_of: Vec<(usize, usize)> = Vec::new();
        for &jid in job_ids {
            let mut job = job_slots[jid].take().expect("job placed once");
            let c = drive_job(job.as_mut(), stripes, &cluster, nodes_g, max_iters);
            net_total.bytes += c.net.bytes;
            net_total.messages += c.net.messages;
            group_compute += c.compute_ns;
            group_net_ns += c.net_ns;
            group_sequential += c.compute_ns + c.net_ns;
            finish_offsets.push((jid, group_sequential));
            iters_of.push((jid, c.iterations));
            results[jid] = c.values;
            iterations[jid] = c.iterations;
        }
        let group_ns = match scheme {
            Scheme::Sequential => {
                // One job at a time; each iteration streams the stripes
                // once, sequentially (no interference).
                let mut t = 0.0;
                for (jid, fin) in &finish_offsets {
                    let iters = iterations[*jid] as f64;
                    let stream = cluster.disk_stream_ns(graph_bytes, nodes_g, 1) * iters;
                    disk_bytes += graph_bytes * iters;
                    t += stream;
                    per_job_ns[*jid] = t + fin;
                }
                t + group_sequential
            }
            Scheme::Concurrent => {
                // Every job streams its own pass every iteration, all at
                // once: k interleaved streams per disk.
                let k = job_ids.len();
                let mut stream_total = 0.0;
                for (jid, _) in &finish_offsets {
                    let iters = iterations[*jid] as f64;
                    stream_total += cluster.disk_stream_ns(graph_bytes, nodes_g, k) * iters;
                    disk_bytes += graph_bytes * iters;
                }
                let exec = group_compute.max(group_net_ns) + stream_total;
                for (jid, fin) in &finish_offsets {
                    per_job_ns[*jid] = exec * (fin / group_sequential.max(1e-9));
                }
                exec
            }
            Scheme::Shared => {
                // GraphM sweep: one stream per iteration serves every job
                // in the group; sweeps continue until the longest job ends.
                let max_iters_g = iters_of.iter().map(|&(_, it)| it).max().unwrap_or(0) as f64;
                let stream = cluster.disk_stream_ns(graph_bytes, nodes_g, 1) * max_iters_g;
                disk_bytes += graph_bytes * max_iters_g;
                let sync_ns = max_iters_g * job_ids.len() as f64 * cluster.net_latency_ns;
                metrics.add(keys::SYNC_NS, sync_ns);
                let exec = group_compute.max(group_net_ns) + stream + sync_ns;
                for (jid, fin) in &finish_offsets {
                    per_job_ns[*jid] = exec * (fin / group_sequential.max(1e-9));
                }
                exec
            }
        };
        makespan = makespan.max(group_ns);
    }

    metrics.set(keys::TOTAL_NS, makespan);
    metrics.set(keys::JOBS, results.len() as f64);
    metrics.set(keys::NET_BYTES, net_total.bytes);
    metrics.set(keys::NET_MESSAGES, net_total.messages);
    metrics.set(keys::DISK_READ_BYTES, disk_bytes);
    metrics.set(keys::ITERATIONS, iterations.iter().sum::<usize>() as f64);
    DistReport { metrics, per_job_ns, results, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_algos::{reference, Bfs, PageRank};
    use graphm_graph::generators;
    use std::sync::Arc as StdArc;

    fn graph() -> EdgeList {
        generators::rmat(250, 2000, generators::RmatParams::GRAPH500, 61)
    }

    fn pr_jobs(g: &EdgeList, n: usize) -> Vec<Box<dyn GraphJob>> {
        let deg = StdArc::new(g.out_degrees());
        (0..n)
            .map(|i| {
                Box::new(
                    PageRank::new(g.num_vertices, StdArc::clone(&deg), 0.5 + 0.05 * i as f64, 4)
                        .with_tolerance(0.0),
                ) as Box<dyn GraphJob>
            })
            .collect()
    }

    #[test]
    fn stripes_preserve_edges() {
        let g = graph();
        let s = stripe(&g, 7);
        let total: usize = s.iter().map(|x| x.len()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn results_match_reference() {
        let g = graph();
        let r = run_chaos(Scheme::Shared, pr_jobs(&g, 3), &g, ClusterConfig::new(6), 2, 100);
        for (i, vals) in r.results.iter().enumerate() {
            let oracle = reference::pagerank_ref(&g, 0.5 + 0.05 * i as f64, 4, 0.0);
            for (a, b) in vals.iter().zip(&oracle) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn paper_ordering_m_best_c_worst() {
        // Table 4: Chaos-C is slower than Chaos-S; Chaos-M beats both.
        let g = graph();
        let cluster = ClusterConfig::new(8);
        let s = run_chaos(Scheme::Sequential, pr_jobs(&g, 8), &g, cluster, 2, 100);
        let c = run_chaos(Scheme::Concurrent, pr_jobs(&g, 8), &g, cluster, 2, 100);
        let m = run_chaos(Scheme::Shared, pr_jobs(&g, 8), &g, cluster, 2, 100);
        let (ts, tc, tm) = (
            s.metrics.get(keys::TOTAL_NS),
            c.metrics.get(keys::TOTAL_NS),
            m.metrics.get(keys::TOTAL_NS),
        );
        assert!(tc > ts, "C {tc} should exceed S {ts} (seek interference)");
        assert!(tm < ts, "M {tm} should beat S {ts}");
        assert!(m.metrics.get(keys::DISK_READ_BYTES) < c.metrics.get(keys::DISK_READ_BYTES));
    }

    #[test]
    fn frontier_job_runs() {
        let g = graph();
        let jobs: Vec<Box<dyn GraphJob>> = vec![Box::new(Bfs::new(g.num_vertices, 1))];
        let r = run_chaos(Scheme::Sequential, jobs, &g, ClusterConfig::new(4), 1, 1000);
        let oracle = reference::bfs_ref(&g, 1);
        for (a, b) in r.results[0].iter().zip(&oracle) {
            assert_eq!(*a, *b as f64);
        }
    }
}
