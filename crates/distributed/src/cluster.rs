//! The simulated cluster substrate.
//!
//! The paper's distributed experiments (Table 4, Figure 21) run on a
//! 128-node 1-GbE cluster of the same 16-core/32 GB machines. We have one
//! 2-core container, so the cluster is simulated: nodes are logical
//! entities holding edge stripes; computation runs for real (the actual
//! algorithms over the node-partitioned edges), while elapsed time is
//! assembled from a documented cost model — per-node compute throughput,
//! network bytes/latency, and disk streaming with seek interference
//! between concurrent streams.

/// Static description of the simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Cores per node (paper: 16).
    pub cores_per_node: usize,
    /// DRAM per node available for graph data (scaled with the datasets,
    /// like `MemoryProfile`).
    pub node_memory_bytes: usize,
    /// Network bandwidth per node in bytes/ns (1 GbE = 0.125 B/ns).
    pub net_bytes_per_ns: f64,
    /// One-way message latency in ns.
    pub net_latency_ns: f64,
    /// Per-node disk streaming bandwidth in bytes/ns (HDD ≈ 150 MB/s).
    pub disk_bytes_per_ns: f64,
    /// Disk seek cost in ns, paid whenever a stream is interrupted
    /// (scaled down with the datasets, like `CostParams::disk_seek_ns`).
    pub disk_seek_ns: f64,
    /// Per-edge compute cost in ns (matches the single-machine model).
    pub edge_compute_ns: f64,
}

impl ClusterConfig {
    /// A cluster of `nodes` nodes with paper-like per-node parameters and
    /// a scaled 4 MB memory budget per node.
    pub fn new(nodes: usize) -> ClusterConfig {
        assert!(nodes >= 1);
        ClusterConfig {
            nodes,
            cores_per_node: 16,
            node_memory_bytes: 4 << 20,
            net_bytes_per_ns: 0.125,
            net_latency_ns: 50_000.0,
            disk_bytes_per_ns: 0.15,
            disk_seek_ns: 500_000.0,
            edge_compute_ns: 5.0,
        }
    }

    /// Total compute capacity in edge-slots per ns.
    pub fn compute_capacity(&self, nodes: usize) -> f64 {
        (nodes * self.cores_per_node) as f64 / self.edge_compute_ns
    }

    /// Time to stream `bytes` from the disks of `nodes` nodes in parallel,
    /// with `interleaved_streams` concurrent readers per disk causing a
    /// seek each time the head switches streams (every `quantum` bytes).
    pub fn disk_stream_ns(&self, bytes: f64, nodes: usize, interleaved_streams: usize) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let per_node = bytes / nodes.max(1) as f64;
        let base = per_node / self.disk_bytes_per_ns;
        let quantum = 1024.0 * 1024.0; // readahead window per stream
        let switches = if interleaved_streams > 1 {
            (per_node / quantum).ceil() * (interleaved_streams as f64 - 1.0).min(8.0)
        } else {
            0.0
        };
        self.disk_seek_ns + base + switches * self.disk_seek_ns
    }

    /// Time for `bytes`/`messages` of all-to-all traffic across `nodes`
    /// nodes: bandwidth is per-node, latency paid per communication round.
    pub fn net_ns(&self, bytes: f64, rounds: f64, nodes: usize) -> f64 {
        let per_node = bytes / nodes.max(1) as f64;
        per_node / self.net_bytes_per_ns + rounds * self.net_latency_ns
    }
}

/// Network counters for one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Total bytes moved.
    pub bytes: f64,
    /// Total messages sent.
    pub messages: f64,
}

/// Splits `nodes` into `groups` near-equal groups and returns each group's
/// node count (the §5.1 job-placement scheme: "the nodes are divided into
/// groups and each group of nodes are used to handle a subset of jobs").
pub fn group_sizes(nodes: usize, groups: usize) -> Vec<usize> {
    let groups = groups.clamp(1, nodes);
    let base = nodes / groups;
    let extra = nodes % groups;
    (0..groups).map(|g| base + usize::from(g < extra)).collect()
}

/// Assigns `jobs` round-robin over `groups` groups ("the newly submitted
/// jobs are assigned to the groups in turn"); returns per-group job
/// indices.
pub fn assign_jobs(jobs: usize, groups: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); groups.max(1)];
    for j in 0..jobs {
        out[j % groups.max(1)].push(j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sizes_cover_all_nodes() {
        assert_eq!(group_sizes(128, 8), vec![16; 8]);
        assert_eq!(group_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(group_sizes(4, 9), vec![1, 1, 1, 1], "groups clamp to nodes");
        let total: usize = group_sizes(77, 5).iter().sum();
        assert_eq!(total, 77);
    }

    #[test]
    fn assign_round_robin() {
        let a = assign_jobs(5, 2);
        assert_eq!(a[0], vec![0, 2, 4]);
        assert_eq!(a[1], vec![1, 3]);
    }

    #[test]
    fn disk_interference_slows_streams() {
        let c = ClusterConfig::new(4);
        let alone = c.disk_stream_ns(1e9, 4, 1);
        let contended = c.disk_stream_ns(1e9, 4, 8);
        assert!(contended > alone * 1.5, "{contended} vs {alone}");
    }

    #[test]
    fn more_nodes_faster_streaming() {
        let c = ClusterConfig::new(16);
        assert!(c.disk_stream_ns(1e9, 16, 1) < c.disk_stream_ns(1e9, 4, 1));
    }

    #[test]
    fn net_model_scales() {
        let c = ClusterConfig::new(8);
        let t1 = c.net_ns(1e6, 2.0, 8);
        let t2 = c.net_ns(2e6, 2.0, 8);
        assert!(t2 > t1);
        assert!(c.net_ns(0.0, 1.0, 8) >= c.net_latency_ns);
    }
}
