//! # graphm-distributed — simulated-cluster PowerGraph and Chaos engines
//!
//! The paper's Table 4 and Figure 21 integrate GraphM with PowerGraph
//! (distributed GAS over a vertex-cut) and Chaos (scale-out edge
//! streaming) on a 128-node 1-GbE cluster. This crate reproduces both on a
//! *simulated* cluster: algorithms execute for real over node-partitioned
//! edges, and elapsed time comes from a documented cost model (per-node
//! compute, network bytes + latency, disk streaming with seek
//! interference). See DESIGN.md §3 for the substitution argument.

pub mod chaos;
pub mod cluster;
pub mod exec;
pub mod powergraph;
pub mod vertexcut;

pub use chaos::{run_chaos, stripe};
pub use cluster::{assign_jobs, group_sizes, ClusterConfig, NetStats};
pub use exec::{run_iteration, DistIterStats, DistReport, MSG_BYTES};
pub use powergraph::run_powergraph;
pub use vertexcut::VertexCut;
