//! The PowerGraph-style engine (GAS over a vertex-cut) with S/C/M schemes.
//!
//! PowerGraph keeps the graph in distributed memory; each GAS iteration
//! synchronizes every updated vertex's replicas (gather at the master,
//! scatter to mirrors), so network traffic per iteration is
//! `updated × 2 × (rf − 1)` messages. Jobs are placed on node *groups*
//! (§5.1); within a group:
//!
//! * **S** — jobs run one at a time, each loading the graph first;
//! * **C** — jobs run concurrently, each with its own in-memory copy
//!   (contended loads + possible memory over-commit, which swaps);
//! * **M** — GraphM holds one shared copy per group: one load, no
//!   over-commit, small per-iteration synchronization overhead.

use crate::cluster::{assign_jobs, group_sizes, ClusterConfig, NetStats};
use crate::exec::{run_iteration, DistReport, MSG_BYTES};
use crate::vertexcut::VertexCut;
use graphm_cachesim::{keys, Metrics};
use graphm_core::{GraphJob, Scheme};
use graphm_graph::{EdgeList, EDGE_BYTES};
use std::collections::HashMap;

/// Per-job virtual accounting within a group.
struct JobCost {
    compute_ns: f64,
    net_ns: f64,
    net: NetStats,
    iterations: usize,
    values: Vec<f64>,
}

/// Drives one job to convergence over a vertex-cut, returning its costs.
fn drive_job(
    job: &mut dyn GraphJob,
    cut: &VertexCut,
    cluster: &ClusterConfig,
    group_nodes: usize,
    max_iters: usize,
) -> JobCost {
    let mut cost = JobCost {
        compute_ns: 0.0,
        net_ns: 0.0,
        net: NetStats::default(),
        iterations: 0,
        values: Vec::new(),
    };
    let cost_factor = job.edge_cost_factor();
    for _ in 0..max_iters {
        let stats = run_iteration(job, &cut.node_edges);
        cost.iterations += 1;
        let busiest = stats.processed_per_node.iter().copied().max().unwrap_or(0) as f64;
        cost.compute_ns +=
            busiest * cluster.edge_compute_ns * cost_factor / cluster.cores_per_node as f64;
        // Replica synchronization: gather (mirror→master) + scatter
        // (master→mirror) for every updated vertex.
        let sync_msgs = stats.updated_vertices * 2.0 * (cut.replication_factor - 1.0).max(0.0);
        let sync_bytes = sync_msgs * MSG_BYTES;
        cost.net.messages += sync_msgs;
        cost.net.bytes += sync_bytes;
        cost.net_ns += cluster.net_ns(sync_bytes, 2.0, group_nodes);
        if stats.converged {
            break;
        }
    }
    cost.values = job.vertex_values();
    cost
}

/// Runs a PowerGraph job mix under `scheme` with the given node grouping.
pub fn run_powergraph(
    scheme: Scheme,
    mut jobs: Vec<Box<dyn GraphJob>>,
    graph: &EdgeList,
    cluster: ClusterConfig,
    groups: usize,
    max_iters: usize,
) -> DistReport {
    let sizes = group_sizes(cluster.nodes, groups);
    let placement = assign_jobs(jobs.len(), sizes.len());
    let graph_bytes = graph.num_edges() as f64 * EDGE_BYTES as f64;

    // One vertex-cut per distinct group size (placement is deterministic).
    let mut cuts: HashMap<usize, VertexCut> = HashMap::new();
    for &s in &sizes {
        cuts.entry(s).or_insert_with(|| VertexCut::random(graph, s));
    }

    let mut per_job_ns = vec![0.0; jobs.len()];
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); jobs.len()];
    let mut iterations = vec![0usize; jobs.len()];
    let mut metrics = Metrics::new();
    let mut makespan: f64 = 0.0;
    let mut net_total = NetStats::default();
    let mut peak_mem: f64 = 0.0;
    let mut disk_bytes: f64 = 0.0;

    // Jobs are taken out of the vec group by group.
    let mut job_slots: Vec<Option<Box<dyn GraphJob>>> = jobs.drain(..).map(Some).collect();

    for (gi, job_ids) in placement.iter().enumerate() {
        if job_ids.is_empty() {
            continue;
        }
        let nodes_g = sizes[gi];
        let cut = &cuts[&nodes_g];
        let k = job_ids.len() as f64;
        let mut group_compute = 0.0;
        let mut group_net_ns = 0.0;
        let mut group_sequential = 0.0;
        let mut finish_offsets: Vec<(usize, f64)> = Vec::new();
        for &jid in job_ids {
            let mut job = job_slots[jid].take().expect("job placed once");
            let c = drive_job(job.as_mut(), cut, &cluster, nodes_g, max_iters);
            net_total.bytes += c.net.bytes;
            net_total.messages += c.net.messages;
            group_compute += c.compute_ns;
            group_net_ns += c.net_ns;
            group_sequential += c.compute_ns + c.net_ns;
            finish_offsets.push((jid, group_sequential));
            results[jid] = c.values;
            iterations[jid] = c.iterations;
        }
        let group_ns = match scheme {
            Scheme::Sequential => {
                // Each job loads the graph, runs alone, releases it.
                let per_load = cluster.disk_stream_ns(graph_bytes, nodes_g, 1);
                disk_bytes += graph_bytes * k;
                peak_mem = peak_mem.max(graph_bytes);
                for (idx, (jid, fin)) in finish_offsets.iter().enumerate() {
                    per_job_ns[*jid] = per_load * (idx as f64 + 1.0) + fin;
                }
                per_load * k + group_sequential
            }
            Scheme::Concurrent => {
                // k private copies loaded through contended disks; memory
                // over-commit swaps the deficit every iteration.
                let load = cluster.disk_stream_ns(graph_bytes * k, nodes_g, job_ids.len());
                disk_bytes += graph_bytes * k;
                let mem_needed = graph_bytes * k;
                let mem_avail = (nodes_g * cluster.node_memory_bytes) as f64;
                peak_mem = peak_mem.max(mem_needed);
                let max_iter_count =
                    job_ids.iter().map(|&j| iterations[j]).max().unwrap_or(0) as f64;
                let deficit = (mem_needed - mem_avail).max(0.0);
                let swap_ns = if deficit > 0.0 {
                    disk_bytes += deficit * max_iter_count;
                    cluster.disk_stream_ns(deficit, nodes_g, job_ids.len()) * max_iter_count
                } else {
                    0.0
                };
                let exec = group_compute.max(group_net_ns) + swap_ns;
                for (jid, fin) in &finish_offsets {
                    // Concurrent jobs share the group; approximate each
                    // job's completion by its share of the serialized work.
                    per_job_ns[*jid] = load + exec * (fin / group_sequential.max(1e-9));
                }
                load + exec
            }
            Scheme::Shared => {
                // One shared copy; one load; bounded sync overhead.
                let load = cluster.disk_stream_ns(graph_bytes, nodes_g, 1);
                disk_bytes += graph_bytes;
                peak_mem = peak_mem.max(graph_bytes);
                let total_iters: usize = job_ids.iter().map(|&j| iterations[j]).sum();
                let sync_ns = total_iters as f64 * cluster.net_latency_ns;
                metrics.add(keys::SYNC_NS, sync_ns);
                let exec = group_compute.max(group_net_ns) + sync_ns;
                for (jid, fin) in &finish_offsets {
                    per_job_ns[*jid] = load + exec * (fin / group_sequential.max(1e-9));
                }
                load + exec
            }
        };
        // Groups execute in parallel: the cluster makespan is the slowest
        // group's clock; per-job times are relative to the common start.
        makespan = makespan.max(group_ns);
    }

    metrics.set(keys::TOTAL_NS, makespan);
    metrics.set(keys::JOBS, results.len() as f64);
    metrics.set(keys::NET_BYTES, net_total.bytes);
    metrics.set(keys::NET_MESSAGES, net_total.messages);
    metrics.set(keys::DISK_READ_BYTES, disk_bytes);
    metrics.set(keys::PEAK_MEMORY_BYTES, peak_mem);
    metrics.set(keys::ITERATIONS, iterations.iter().sum::<usize>() as f64);
    DistReport { metrics, per_job_ns, results, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_algos::{reference, PageRank, Wcc};
    use graphm_graph::generators;
    use std::sync::Arc;

    fn graph() -> EdgeList {
        generators::rmat(300, 2500, generators::RmatParams::GRAPH500, 41)
    }

    fn pr_jobs(g: &EdgeList, n: usize) -> Vec<Box<dyn GraphJob>> {
        let deg = Arc::new(g.out_degrees());
        (0..n)
            .map(|i| {
                Box::new(
                    PageRank::new(g.num_vertices, Arc::clone(&deg), 0.5 + 0.05 * i as f64, 5)
                        .with_tolerance(0.0),
                ) as Box<dyn GraphJob>
            })
            .collect()
    }

    #[test]
    fn results_match_reference_across_schemes() {
        let g = graph();
        for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
            let r = run_powergraph(scheme, pr_jobs(&g, 4), &g, ClusterConfig::new(8), 2, 100);
            for (i, vals) in r.results.iter().enumerate() {
                let oracle = reference::pagerank_ref(&g, 0.5 + 0.05 * i as f64, 5, 0.0);
                for (a, b) in vals.iter().zip(&oracle) {
                    assert!((a - b).abs() < 1e-9, "{scheme:?}");
                }
            }
        }
    }

    #[test]
    fn shared_is_fastest_and_reads_least() {
        let g = graph();
        let cluster = ClusterConfig::new(8);
        let s = run_powergraph(Scheme::Sequential, pr_jobs(&g, 8), &g, cluster, 1, 100);
        let c = run_powergraph(Scheme::Concurrent, pr_jobs(&g, 8), &g, cluster, 2, 100);
        let m = run_powergraph(Scheme::Shared, pr_jobs(&g, 8), &g, cluster, 2, 100);
        assert!(m.metrics.get(keys::TOTAL_NS) < c.metrics.get(keys::TOTAL_NS));
        assert!(m.metrics.get(keys::TOTAL_NS) < s.metrics.get(keys::TOTAL_NS));
        assert!(m.metrics.get(keys::DISK_READ_BYTES) < c.metrics.get(keys::DISK_READ_BYTES));
        assert!(m.metrics.get(keys::PEAK_MEMORY_BYTES) <= c.metrics.get(keys::PEAK_MEMORY_BYTES));
    }

    #[test]
    fn wcc_converges_distributed() {
        let g = generators::symmetrize(&graph());
        let jobs: Vec<Box<dyn GraphJob>> = vec![Box::new(Wcc::new(g.num_vertices))];
        let r = run_powergraph(Scheme::Shared, jobs, &g, ClusterConfig::new(4), 1, 1000);
        let oracle = reference::wcc_ref(&g);
        for (a, b) in r.results[0].iter().zip(&oracle) {
            assert_eq!(*a, *b as f64);
        }
    }

    #[test]
    fn network_traffic_reported() {
        let g = graph();
        let r = run_powergraph(Scheme::Shared, pr_jobs(&g, 2), &g, ClusterConfig::new(8), 1, 100);
        assert!(r.metrics.get(keys::NET_BYTES) > 0.0);
        assert!(r.metrics.get(keys::NET_MESSAGES) > 0.0);
    }
}
