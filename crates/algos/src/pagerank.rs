//! PageRank as a GraphM job.
//!
//! The paper's job generator randomizes the damping factor per submission
//! ("the damping factor is randomly set by a value between 0.1 and 0.85
//! for each PageRank job", §5.1); PageRank is the network-intensive
//! benchmark that streams the whole graph every iteration.
//!
//! Push-style synchronous iteration: each edge `(s, t)` transfers
//! `rank[s] / out_degree[s]` into `next[t]`; `end_iteration` applies the
//! damping rule and tests the L1 delta against a tolerance.

use graphm_core::{EdgeOutcome, GatherKernel, GraphJob};
use graphm_graph::{AtomicBitmap, Edge, VertexId};
use std::sync::Arc;

/// PageRank job state (the paper's job-specific data `S`).
pub struct PageRank {
    damping: f64,
    max_iters: usize,
    tolerance: f64,
    out_degrees: Arc<Vec<u32>>,
    /// Previous-iteration ranks. Shared (`Arc`) so the gather kernel can
    /// read them from worker threads mid-iteration; mutated only in
    /// `end_iteration`, after the runtime has dropped the kernel.
    ranks: Arc<Vec<f64>>,
    next: Vec<f64>,
    active: AtomicBitmap,
    iters: usize,
}

/// The gather half of a degree-normalized push update:
/// `ranks[src] / deg[src]` reads only iteration-stable state, so chunks
/// gather concurrently; the order-sensitive `next[dst] +=` stays in the
/// apply helpers below. Shared by [`PageRank`] and
/// [`crate::PersonalizedPageRank`] — their edge functions are identical
/// (only the teleport rule in `end_iteration` differs).
pub(crate) struct PushGather {
    pub(crate) ranks: Arc<Vec<f64>>,
    pub(crate) out_degrees: Arc<Vec<u32>>,
}

impl GatherKernel for PushGather {
    fn gather(&self, edges: &[Edge], out: &mut Vec<f64>) {
        out.extend(edges.iter().map(|e| {
            let deg = self.out_degrees[e.src as usize];
            if deg > 0 {
                self.ranks[e.src as usize] / deg as f64
            } else {
                0.0
            }
        }));
    }
}

/// Serial apply of one pre-gathered push contribution — the exact add of
/// the push `process_edge`, shared by PageRank and PPR.
#[inline]
pub(crate) fn apply_push_edge(next: &mut [f64], out_degrees: &[u32], e: &Edge, g: f64) {
    if out_degrees[e.src as usize] > 0 {
        next[e.dst as usize] += g;
    }
}

/// Tight chunk-granular apply (no per-edge virtual dispatch): the exact
/// adds of the push `process_edge`, in the exact order.
pub(crate) fn apply_push_chunk(
    next: &mut [f64],
    out_degrees: &[u32],
    edges: &[Edge],
    gathered: &[f64],
) -> u64 {
    for (e, &g) in edges.iter().zip(gathered) {
        if out_degrees[e.src as usize] > 0 {
            next[e.dst as usize] += g;
        }
    }
    edges.len() as u64
}

impl PageRank {
    /// Creates a PageRank job. `out_degrees` comes from the preprocessed
    /// graph (all engines expose it); `damping ∈ (0, 1)`; iteration stops
    /// at `max_iters` or when the L1 rank delta drops below `tolerance`.
    pub fn new(
        num_vertices: VertexId,
        out_degrees: Arc<Vec<u32>>,
        damping: f64,
        max_iters: usize,
    ) -> PageRank {
        assert!(damping > 0.0 && damping < 1.0, "damping must be in (0, 1)");
        assert_eq!(out_degrees.len(), num_vertices as usize);
        let n = num_vertices as usize;
        let init = 1.0 / n.max(1) as f64;
        let active = AtomicBitmap::new(n);
        active.set_all();
        PageRank {
            damping,
            max_iters,
            tolerance: 1e-7,
            out_degrees,
            ranks: Arc::new(vec![init; n]),
            next: vec![0.0; n],
            active,
            iters: 0,
        }
    }

    /// Overrides the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> PageRank {
        self.tolerance = tolerance;
        self
    }

    /// The damping factor of this job.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Current ranks.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

impl GraphJob for PageRank {
    fn name(&self) -> &str {
        "PageRank"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        8
    }

    fn edge_cost_factor(&self) -> f64 {
        1.0
    }

    fn skips_inactive(&self) -> bool {
        false // streams the entire graph structure every iteration (§3.4.1)
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
        let deg = self.out_degrees[e.src as usize];
        if deg > 0 {
            self.next[e.dst as usize] += self.ranks[e.src as usize] / deg as f64;
        }
        EdgeOutcome { activated_dst: true }
    }

    fn gather_kernel(&self) -> Option<Arc<dyn GatherKernel>> {
        Some(Arc::new(PushGather {
            ranks: Arc::clone(&self.ranks),
            out_degrees: Arc::clone(&self.out_degrees),
        }))
    }

    fn apply_gathered_chunk(&mut self, edges: &[Edge], gathered: &[f64]) -> u64 {
        apply_push_chunk(&mut self.next, &self.out_degrees, edges, gathered)
    }

    fn apply_gathered(&mut self, e: &Edge, g: f64) -> EdgeOutcome {
        // Adds the exact quotient `process_edge` would have added, in the
        // same order (the executor replays applies serially).
        apply_push_edge(&mut self.next, &self.out_degrees, e, g);
        EdgeOutcome { activated_dst: true }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters += 1;
        let n = self.ranks.len().max(1) as f64;
        let base = (1.0 - self.damping) / n;
        let mut delta = 0.0;
        // In-place unless a kernel from this iteration is still alive
        // (the runtime drops kernels before end_iteration; `make_mut`
        // keeps stragglers sound by copying).
        let ranks = Arc::make_mut(&mut self.ranks);
        for (r, nx) in ranks.iter_mut().zip(self.next.iter_mut()) {
            let new = base + self.damping * *nx;
            delta += (new - *r).abs();
            *r = new;
            *nx = 0.0;
        }
        self.iters >= self.max_iters || delta < self.tolerance
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.ranks.as_ref().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    fn run_streaming(g: &graphm_graph::EdgeList, damping: f64, iters: usize) -> Vec<f64> {
        let deg = Arc::new(g.out_degrees());
        let mut pr = PageRank::new(g.num_vertices, deg, damping, iters);
        loop {
            for e in &g.edges {
                pr.process_edge(e);
            }
            if pr.end_iteration() {
                break;
            }
        }
        pr.vertex_values()
    }

    #[test]
    fn ranks_sum_to_one_without_dangling() {
        let g = generators::ring(50); // every vertex has out-degree 1
        let ranks = run_streaming(&g, 0.85, 30);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        // Ring symmetry: all ranks equal.
        for r in &ranks {
            assert!((r - ranks[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_receives_no_rank_mass() {
        let g = generators::star(10); // 0 -> 1..9, no edges into 0
        let ranks = run_streaming(&g, 0.5, 20);
        let n = 10.0;
        assert!((ranks[0] - 0.5 / n).abs() < 1e-9, "center keeps only base rank");
        assert!(ranks[1] > ranks[0]);
    }

    #[test]
    fn converges_before_max_iters() {
        let g = generators::ring(16);
        let deg = Arc::new(g.out_degrees());
        let mut pr = PageRank::new(16, deg, 0.85, 1000).with_tolerance(1e-10);
        let mut iters = 0;
        loop {
            for e in &g.edges {
                pr.process_edge(e);
            }
            iters += 1;
            if pr.end_iteration() {
                break;
            }
        }
        assert!(iters < 1000, "should converge, took {iters}");
        assert_eq!(pr.iterations(), iters);
    }

    #[test]
    fn damping_validated() {
        let result = std::panic::catch_unwind(|| PageRank::new(2, Arc::new(vec![0, 0]), 1.5, 5));
        assert!(result.is_err());
    }

    #[test]
    fn all_vertices_stay_active() {
        let g = generators::path(8);
        let deg = Arc::new(g.out_degrees());
        let mut pr = PageRank::new(8, deg, 0.85, 3);
        assert!(!pr.skips_inactive());
        assert_eq!(pr.active().count(), 8);
        for e in &g.edges {
            pr.process_edge(e);
        }
        pr.end_iteration();
        assert_eq!(pr.active().count(), 8);
    }
}
