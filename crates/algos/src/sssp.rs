//! Single-source shortest paths as a GraphM job.
//!
//! Streaming Bellman–Ford: edge `(s, t, w)` relaxes
//! `dist[t] = min(dist[t], dist[s] + w)`; relaxed destinations join the
//! next frontier. Like BFS, SSSP "may only need to process a part of the
//! graph data" each iteration (§3.4.1) — it exercises GraphM's inactive
//! chunk skipping and the §4 scheduler.

use graphm_core::{EdgeOutcome, GraphJob};
use graphm_graph::{AtomicBitmap, Edge, VertexId};

/// Distance for unreached vertices.
pub const UNREACHABLE: f32 = f32::INFINITY;

/// SSSP job state.
pub struct Sssp {
    root: VertexId,
    dist: Vec<f32>,
    active: AtomicBitmap,
    next_active: AtomicBitmap,
    relaxed: bool,
    iters: usize,
}

impl Sssp {
    /// An SSSP job from `root` over non-negative edge weights.
    pub fn new(num_vertices: VertexId, root: VertexId) -> Sssp {
        assert!(root < num_vertices, "root out of range");
        let n = num_vertices as usize;
        let mut dist = vec![UNREACHABLE; n];
        dist[root as usize] = 0.0;
        let active = AtomicBitmap::new(n);
        active.set(root as usize);
        Sssp { root, dist, active, next_active: AtomicBitmap::new(n), relaxed: false, iters: 0 }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Current tentative distances.
    pub fn distances(&self) -> &[f32] {
        &self.dist
    }
}

impl GraphJob for Sssp {
    fn name(&self) -> &str {
        "SSSP"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        4
    }

    fn edge_cost_factor(&self) -> f64 {
        0.7
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
        debug_assert!(e.weight >= 0.0, "SSSP requires non-negative weights");
        let cand = self.dist[e.src as usize] + e.weight;
        if cand < self.dist[e.dst as usize] {
            self.dist[e.dst as usize] = cand;
            self.next_active.set(e.dst as usize);
            self.relaxed = true;
            return EdgeOutcome { activated_dst: true };
        }
        EdgeOutcome { activated_dst: false }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters += 1;
        self.active.copy_from(&self.next_active);
        self.next_active.clear_all();
        let converged = !self.relaxed;
        self.relaxed = false;
        converged
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.dist.iter().map(|&d| d as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::{generators, EdgeList};

    fn run(g: &EdgeList, root: VertexId) -> Sssp {
        let mut sssp = Sssp::new(g.num_vertices, root);
        loop {
            for e in &g.edges {
                if sssp.active().get(e.src as usize) {
                    sssp.process_edge(e);
                }
            }
            if sssp.end_iteration() {
                break;
            }
        }
        sssp
    }

    #[test]
    fn weighted_diamond_picks_shorter_path() {
        // 0 -> 1 (1.0) -> 3 (1.0)  vs  0 -> 2 (5.0) -> 3 (0.5)
        let g = EdgeList::from_edges(
            4,
            vec![
                Edge::weighted(0, 1, 1.0),
                Edge::weighted(1, 3, 1.0),
                Edge::weighted(0, 2, 5.0),
                Edge::weighted(2, 3, 0.5),
            ],
        )
        .unwrap();
        let s = run(&g, 0);
        assert_eq!(s.distances()[3], 2.0);
        assert_eq!(s.distances()[2], 5.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let s = run(&generators::path(4), 2);
        assert!(s.distances()[0].is_infinite());
        assert_eq!(s.distances()[2], 0.0);
    }

    #[test]
    fn path_distances_accumulate_weights() {
        let mut g = EdgeList::new(5);
        for i in 0..4u32 {
            g.edges.push(Edge::weighted(i, i + 1, (i + 1) as f32));
        }
        let s = run(&g, 0);
        assert_eq!(s.distances()[4], 1.0 + 2.0 + 3.0 + 4.0);
    }

    #[test]
    fn converges_on_cycle() {
        let s = run(&generators::ring(10), 0);
        // weight 1.0 default: dist[k] = k.
        for k in 0..10usize {
            assert_eq!(s.distances()[k], k as f32);
        }
    }
}
