//! Label propagation — the second concurrent-workload family the paper's
//! introduction cites at Facebook (Boldi et al.'s layered label
//! propagation, the paper's reference \[8\]).
//!
//! This streaming variant is *min-hash* label propagation: vertices start
//! with pseudo-random labels (a hash of their id with a per-job salt) and
//! adopt the smallest label seen over incoming edges. Unlike WCC, two
//! submissions with different salts do different work on different
//! frontiers while traversing the same structure, which makes it a good
//! generator of partially-overlapping access patterns for sharing studies.

use graphm_core::{EdgeOutcome, GraphJob};
use graphm_graph::{AtomicBitmap, Edge, VertexId};

/// Deterministic 64-bit mix (splitmix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Min-hash label propagation job state.
pub struct LabelPropagation {
    salt: u64,
    labels: Vec<u64>,
    active: AtomicBitmap,
    next_active: AtomicBitmap,
    changed: bool,
    iters: usize,
    max_iters: usize,
}

impl LabelPropagation {
    /// A label-propagation job with a per-submission `salt`.
    pub fn new(num_vertices: VertexId, salt: u64, max_iters: usize) -> LabelPropagation {
        let n = num_vertices as usize;
        let active = AtomicBitmap::new(n);
        active.set_all();
        // Expand the salt to full 64-bit entropy first; XOR with a small
        // raw salt would merely permute small vertex ids and leave the
        // label *set* (and hence the winning minimum) nearly unchanged.
        let expanded = mix(salt);
        LabelPropagation {
            salt,
            labels: (0..num_vertices).map(|v| mix(v as u64 ^ expanded)).collect(),
            active,
            next_active: AtomicBitmap::new(n),
            changed: false,
            iters: 0,
            max_iters: max_iters.max(1),
        }
    }

    /// The job's salt.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Current labels.
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }
}

impl GraphJob for LabelPropagation {
    fn name(&self) -> &str {
        "LabelProp"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        8
    }

    fn edge_cost_factor(&self) -> f64 {
        0.9
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
        let ls = self.labels[e.src as usize];
        if ls < self.labels[e.dst as usize] {
            self.labels[e.dst as usize] = ls;
            self.changed = true;
            self.next_active.set(e.dst as usize);
            return EdgeOutcome { activated_dst: true };
        }
        EdgeOutcome { activated_dst: false }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters += 1;
        self.active.copy_from(&self.next_active);
        self.next_active.clear_all();
        let converged = !self.changed || self.iters >= self.max_iters;
        self.changed = false;
        converged
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn vertex_values(&self) -> Vec<f64> {
        // Lossy but order-preserving enough for oracle comparisons.
        self.labels.iter().map(|&l| l as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    fn run(g: &graphm_graph::EdgeList, salt: u64) -> LabelPropagation {
        let mut lp = LabelPropagation::new(g.num_vertices, salt, 100);
        loop {
            for e in &g.edges {
                if lp.active().get(e.src as usize) {
                    lp.process_edge(e);
                }
            }
            if lp.end_iteration() {
                break;
            }
        }
        lp
    }

    #[test]
    fn connected_graph_converges_to_one_label() {
        let lp = run(&generators::ring(20), 42);
        let min = *lp.labels().iter().min().unwrap();
        assert!(lp.labels().iter().all(|&l| l == min));
    }

    #[test]
    fn different_salts_different_work() {
        let g = generators::ring(20);
        let a = run(&g, 1);
        let b = run(&g, 2);
        assert_ne!(a.labels()[0], b.labels()[0], "salts change the winning label");
    }

    #[test]
    fn deterministic_per_salt() {
        let g = generators::ring(20);
        assert_eq!(run(&g, 7).labels(), run(&g, 7).labels());
    }
}
