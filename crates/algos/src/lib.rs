//! # graphm-algos — iterative graph algorithms as GraphM jobs
//!
//! The paper's four benchmarks (§5.1) plus two of the workload "variants"
//! its introduction motivates, each implemented against
//! [`graphm_core::GraphJob`] so any host engine — GridGraph-style grids,
//! GraphChi-style shards, the simulated PowerGraph/Chaos clusters — can run
//! them under any execution scheme:
//!
//! | Job | Access pattern | Cost factor |
//! |-----|----------------|-------------|
//! | [`PageRank`] | dense, whole graph each iteration | 1.0 |
//! | [`Wcc`] | shrinking frontier | 0.8 |
//! | [`Bfs`] | expanding-then-shrinking frontier | 0.5 |
//! | [`Sssp`] | irregular frontier, weighted | 0.7 |
//! | [`PersonalizedPageRank`] | dense, seed-specific state | 1.0 |
//! | [`LabelPropagation`] | salted frontiers | 0.9 |
//!
//! [`mod@reference`] holds the sequential oracles the integration tests
//! compare every scheme against.

pub mod bfs;
pub mod labelprop;
pub mod pagerank;
pub mod ppr;
pub mod reference;
pub mod sssp;
pub mod wcc;

pub use bfs::{Bfs, UNREACHED};
pub use labelprop::LabelPropagation;
pub use pagerank::PageRank;
pub use ppr::PersonalizedPageRank;
pub use sssp::{Sssp, UNREACHABLE};
pub use wcc::Wcc;
