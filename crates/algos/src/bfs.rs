//! Breadth-first search as a GraphM job.
//!
//! Frontier-driven level assignment: iteration `k` processes out-edges of
//! the level-`k` frontier and assigns level `k + 1` to undiscovered
//! destinations. BFS is the paper's prototypical *sparse-access* benchmark:
//! "only one or a few vertices are active at the beginning, but then a
//! large number of vertices will be activated" (§4) — the workload the
//! scheduling strategy exists for.

use graphm_core::{EdgeOutcome, GraphJob};
use graphm_graph::{AtomicBitmap, Edge, VertexId};

/// Level value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS job state.
pub struct Bfs {
    root: VertexId,
    levels: Vec<u32>,
    active: AtomicBitmap,
    next_active: AtomicBitmap,
    discovered: bool,
    iters: usize,
}

impl Bfs {
    /// A BFS job from `root`.
    pub fn new(num_vertices: VertexId, root: VertexId) -> Bfs {
        assert!(root < num_vertices, "root out of range");
        let n = num_vertices as usize;
        let mut levels = vec![UNREACHED; n];
        levels[root as usize] = 0;
        let active = AtomicBitmap::new(n);
        active.set(root as usize);
        Bfs { root, levels, active, next_active: AtomicBitmap::new(n), discovered: false, iters: 0 }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// BFS levels (`UNREACHED` for unreachable vertices).
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }
}

impl GraphJob for Bfs {
    fn name(&self) -> &str {
        "BFS"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        4
    }

    fn edge_cost_factor(&self) -> f64 {
        0.5
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
        if self.levels[e.dst as usize] == UNREACHED {
            self.levels[e.dst as usize] = self.levels[e.src as usize] + 1;
            self.next_active.set(e.dst as usize);
            self.discovered = true;
            return EdgeOutcome { activated_dst: true };
        }
        EdgeOutcome { activated_dst: false }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters += 1;
        self.active.copy_from(&self.next_active);
        self.next_active.clear_all();
        let converged = !self.discovered;
        self.discovered = false;
        converged
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.levels.iter().map(|&l| l as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    fn run(g: &graphm_graph::EdgeList, root: VertexId) -> Bfs {
        let mut bfs = Bfs::new(g.num_vertices, root);
        loop {
            for e in &g.edges {
                if bfs.active().get(e.src as usize) {
                    bfs.process_edge(e);
                }
            }
            if bfs.end_iteration() {
                break;
            }
        }
        bfs
    }

    #[test]
    fn path_levels() {
        let bfs = run(&generators::path(6), 0);
        assert_eq!(bfs.levels(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn unreachable_stays_unreached() {
        let bfs = run(&generators::path(6), 3);
        assert_eq!(bfs.levels()[0], UNREACHED);
        assert_eq!(bfs.levels()[3], 0);
        assert_eq!(bfs.levels()[5], 2);
    }

    #[test]
    fn star_one_hop() {
        let bfs = run(&generators::star(8), 0);
        assert_eq!(bfs.levels()[0], 0);
        for v in 1..8 {
            assert_eq!(bfs.levels()[v], 1);
        }
        assert_eq!(bfs.iterations(), 2, "frontier empties after hop 1");
    }

    #[test]
    fn only_frontier_active() {
        let g = generators::path(6);
        let bfs = Bfs::new(6, 2);
        assert!(bfs.skips_inactive());
        assert_eq!(bfs.active().count(), 1);
        assert!(bfs.active().get(2));
        let _ = g;
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn root_validated() {
        Bfs::new(4, 9);
    }
}
