//! Sequential reference implementations ("oracles").
//!
//! Every integration test compares scheme results against these: if
//! GridGraph-S/-C/-M (or any other engine) disagrees with the oracle,
//! the storage layer corrupted the computation. The oracles run on plain
//! CSR with textbook algorithms, structurally unrelated to the streaming
//! engines, so agreement is meaningful.

use graphm_graph::{Csr, EdgeList, VertexId};
use std::collections::VecDeque;

/// Reference PageRank: synchronous power iteration, the same update rule
/// as [`crate::PageRank`] (push-based with rank leak at dangling
/// vertices), run for exactly `iters` iterations or until the L1 delta
/// drops below `tolerance`.
pub fn pagerank_ref(g: &EdgeList, damping: f64, iters: usize, tolerance: f64) -> Vec<f64> {
    let n = g.num_vertices as usize;
    if n == 0 {
        return Vec::new();
    }
    let deg = g.out_degrees();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let base = (1.0 - damping) / n as f64;
    for _ in 0..iters {
        for e in &g.edges {
            let d = deg[e.src as usize];
            if d > 0 {
                next[e.dst as usize] += ranks[e.src as usize] / d as f64;
            }
        }
        let mut delta = 0.0;
        for (r, nx) in ranks.iter_mut().zip(next.iter_mut()) {
            let new = base + damping * *nx;
            delta += (new - *r).abs();
            *r = new;
            *nx = 0.0;
        }
        if delta < tolerance {
            break;
        }
    }
    ranks
}

/// Reference WCC fixpoint: repeated min-label relaxation over the edge
/// list until nothing changes (matches the streaming job's "minimum
/// reaching id" semantics on directed inputs).
pub fn wcc_ref(g: &EdgeList) -> Vec<VertexId> {
    let n = g.num_vertices as usize;
    let mut labels: Vec<VertexId> = (0..g.num_vertices).collect();
    let mut changed = n > 0;
    while changed {
        changed = false;
        for e in &g.edges {
            let ls = labels[e.src as usize];
            if ls < labels[e.dst as usize] {
                labels[e.dst as usize] = ls;
                changed = true;
            }
        }
    }
    labels
}

/// Reference BFS levels via a queue.
pub fn bfs_ref(g: &EdgeList, root: VertexId) -> Vec<u32> {
    let csr = Csr::from_edge_list(g);
    let n = csr.num_vertices();
    let mut levels = vec![u32::MAX; n];
    levels[root as usize] = 0;
    let mut q = VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &t in csr.neighbors(v) {
            if levels[t as usize] == u32::MAX {
                levels[t as usize] = levels[v as usize] + 1;
                q.push_back(t);
            }
        }
    }
    levels
}

/// Reference SSSP via Bellman–Ford to fixpoint (weights are non-negative
/// in our generators; Bellman–Ford keeps the oracle independent of the
/// streaming implementation while computing the same fixpoint).
pub fn sssp_ref(g: &EdgeList, root: VertexId) -> Vec<f32> {
    let n = g.num_vertices as usize;
    let mut dist = vec![f32::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut changed = true;
    while changed {
        changed = false;
        for e in &g.edges {
            if dist[e.src as usize].is_finite() {
                let cand = dist[e.src as usize] + e.weight;
                if cand < dist[e.dst as usize] {
                    dist[e.dst as usize] = cand;
                    changed = true;
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bfs, PageRank, Sssp, Wcc};
    use graphm_core::GraphJob;
    use graphm_graph::generators;
    use std::sync::Arc;

    /// Drives a job sequentially over the raw edge list (no engine).
    fn drive(job: &mut dyn GraphJob, g: &EdgeList, max_iters: usize) {
        for _ in 0..max_iters {
            for e in &g.edges {
                if !job.skips_inactive() || job.active().get(e.src as usize) {
                    job.process_edge(e);
                }
            }
            if job.end_iteration() {
                break;
            }
        }
    }

    use graphm_graph::EdgeList;

    #[test]
    fn streaming_pagerank_matches_reference() {
        let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 3);
        let mut job = PageRank::new(200, Arc::new(g.out_degrees()), 0.85, 10).with_tolerance(0.0);
        drive(&mut job, &g, 10);
        let oracle = pagerank_ref(&g, 0.85, 10, 0.0);
        for (a, b) in job.ranks().iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn streaming_wcc_matches_reference() {
        let g = generators::symmetrize(&generators::rmat(
            150,
            600,
            generators::RmatParams::GRAPH500,
            4,
        ));
        let mut job = Wcc::new(150);
        drive(&mut job, &g, 1000);
        assert_eq!(job.labels(), wcc_ref(&g).as_slice());
    }

    #[test]
    fn streaming_bfs_matches_reference() {
        let g = generators::rmat(150, 900, generators::RmatParams::GRAPH500, 5);
        let mut job = Bfs::new(150, 3);
        drive(&mut job, &g, 1000);
        assert_eq!(job.levels(), bfs_ref(&g, 3).as_slice());
    }

    #[test]
    fn streaming_sssp_matches_reference() {
        let g = generators::rmat(150, 900, generators::RmatParams::GRAPH500, 6);
        let mut job = Sssp::new(150, 3);
        drive(&mut job, &g, 1000);
        let oracle = sssp_ref(&g, 3);
        for (a, b) in job.distances().iter().zip(&oracle) {
            assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn empty_graph_oracles() {
        let g = EdgeList::new(0);
        assert!(pagerank_ref(&g, 0.85, 5, 0.0).is_empty());
        assert!(wcc_ref(&g).is_empty());
    }
}
