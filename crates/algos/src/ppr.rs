//! Personalized PageRank — one of the "variants of PageRank" the paper's
//! introduction cites as Facebook's concurrent workload.
//!
//! Identical streaming structure to [`crate::PageRank`], but the teleport
//! mass concentrates on a seed vertex instead of spreading uniformly, so
//! different submissions of the same algorithm have genuinely different
//! job-specific data while sharing every byte of graph structure — the
//! sharing opportunity GraphM exploits.

use graphm_core::{EdgeOutcome, GatherKernel, GraphJob};
use graphm_graph::{AtomicBitmap, Edge, VertexId};
use std::sync::Arc;

/// Personalized PageRank job state.
pub struct PersonalizedPageRank {
    seed: VertexId,
    damping: f64,
    max_iters: usize,
    tolerance: f64,
    out_degrees: Arc<Vec<u32>>,
    /// Previous-iteration ranks, shared with the gather kernel (see
    /// [`crate::PageRank`] — same contract: mutated only between
    /// iterations, after kernels are dropped).
    ranks: Arc<Vec<f64>>,
    next: Vec<f64>,
    active: AtomicBitmap,
    iters: usize,
}

impl PersonalizedPageRank {
    /// A PPR job teleporting to `seed`.
    pub fn new(
        num_vertices: VertexId,
        out_degrees: Arc<Vec<u32>>,
        seed: VertexId,
        damping: f64,
        max_iters: usize,
    ) -> PersonalizedPageRank {
        assert!(seed < num_vertices, "seed out of range");
        assert!(damping > 0.0 && damping < 1.0);
        let n = num_vertices as usize;
        let mut ranks = vec![0.0; n];
        ranks[seed as usize] = 1.0;
        let active = AtomicBitmap::new(n);
        active.set_all();
        PersonalizedPageRank {
            seed,
            damping,
            max_iters,
            tolerance: 1e-9,
            out_degrees,
            ranks: Arc::new(ranks),
            next: vec![0.0; n],
            active,
            iters: 0,
        }
    }

    /// The personalization seed.
    pub fn seed(&self) -> VertexId {
        self.seed
    }

    /// Current personalized ranks.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }
}

impl GraphJob for PersonalizedPageRank {
    fn name(&self) -> &str {
        "PPR"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        8
    }

    fn edge_cost_factor(&self) -> f64 {
        1.0
    }

    fn skips_inactive(&self) -> bool {
        false
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
        let deg = self.out_degrees[e.src as usize];
        if deg > 0 {
            self.next[e.dst as usize] += self.ranks[e.src as usize] / deg as f64;
        }
        EdgeOutcome { activated_dst: true }
    }

    fn gather_kernel(&self) -> Option<Arc<dyn GatherKernel>> {
        // Identical edge function to PageRank (the teleport rule lives in
        // `end_iteration`), so the gather/apply pair is shared.
        Some(Arc::new(crate::pagerank::PushGather {
            ranks: Arc::clone(&self.ranks),
            out_degrees: Arc::clone(&self.out_degrees),
        }))
    }

    fn apply_gathered_chunk(&mut self, edges: &[Edge], gathered: &[f64]) -> u64 {
        crate::pagerank::apply_push_chunk(&mut self.next, &self.out_degrees, edges, gathered)
    }

    fn apply_gathered(&mut self, e: &Edge, g: f64) -> EdgeOutcome {
        crate::pagerank::apply_push_edge(&mut self.next, &self.out_degrees, e, g);
        EdgeOutcome { activated_dst: true }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters += 1;
        let mut delta = 0.0;
        let ranks = Arc::make_mut(&mut self.ranks);
        for (v, (r, nx)) in ranks.iter_mut().zip(self.next.iter_mut()).enumerate() {
            let teleport = if v == self.seed as usize { 1.0 - self.damping } else { 0.0 };
            let new = teleport + self.damping * *nx;
            delta += (new - *r).abs();
            *r = new;
            *nx = 0.0;
        }
        self.iters >= self.max_iters || delta < self.tolerance
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.ranks.as_ref().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn mass_stays_near_seed() {
        let g = generators::ring(10);
        let deg = Arc::new(g.out_degrees());
        let mut ppr = PersonalizedPageRank::new(10, deg, 3, 0.5, 50);
        loop {
            for e in &g.edges {
                ppr.process_edge(e);
            }
            if ppr.end_iteration() {
                break;
            }
        }
        let ranks = ppr.ranks();
        assert!(ranks[3] > ranks[8], "seed outranks the far side of the ring");
        assert!(ranks[4] > ranks[5], "rank decays along the ring");
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "no dangling vertices: mass conserved, sum={sum}");
    }

    #[test]
    fn seed_validated() {
        let r = std::panic::catch_unwind(|| {
            PersonalizedPageRank::new(3, Arc::new(vec![0, 0, 0]), 7, 0.5, 5)
        });
        assert!(r.is_err());
    }
}
