//! Weakly connected components as a GraphM job.
//!
//! Min-label propagation: every vertex starts with its own id; each edge
//! `(s, t)` lowers `label[t]` to `label[s]` when smaller. On a symmetrized
//! graph the fixpoint labels each weak component by its minimum vertex id.
//! Directed inputs converge to the "minimum reaching id", which is the
//! semantics the streaming engines the paper builds on use for WCC unless
//! the input is symmetrized — see [`graphm_graph::generators::symmetrize`].
//!
//! §5.1: "The total number of iterations is a randomly selected integer
//! between one and the maximum number of iterations for each WCC job" —
//! [`Wcc::with_max_iters`] models those truncated submissions.

use graphm_core::{EdgeOutcome, GraphJob};
use graphm_graph::{AtomicBitmap, Edge, VertexId};

/// WCC job state.
pub struct Wcc {
    labels: Vec<VertexId>,
    active: AtomicBitmap,
    next_active: AtomicBitmap,
    changed: bool,
    iters: usize,
    max_iters: usize,
}

impl Wcc {
    /// A WCC job running to fixpoint.
    pub fn new(num_vertices: VertexId) -> Wcc {
        let n = num_vertices as usize;
        let active = AtomicBitmap::new(n);
        active.set_all();
        Wcc {
            labels: (0..num_vertices).collect(),
            active,
            next_active: AtomicBitmap::new(n),
            changed: false,
            iters: 0,
            max_iters: usize::MAX,
        }
    }

    /// Caps the iteration count (the paper's randomly truncated WCC jobs).
    pub fn with_max_iters(mut self, max_iters: usize) -> Wcc {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Current component labels.
    pub fn labels(&self) -> &[VertexId] {
        &self.labels
    }
}

impl GraphJob for Wcc {
    fn name(&self) -> &str {
        "WCC"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        4
    }

    fn edge_cost_factor(&self) -> f64 {
        0.8
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
        let ls = self.labels[e.src as usize];
        if ls < self.labels[e.dst as usize] {
            self.labels[e.dst as usize] = ls;
            self.changed = true;
            self.next_active.set(e.dst as usize);
            return EdgeOutcome { activated_dst: true };
        }
        EdgeOutcome { activated_dst: false }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters += 1;
        self.active.copy_from(&self.next_active);
        self.next_active.clear_all();
        let converged = !self.changed || self.iters >= self.max_iters;
        self.changed = false;
        converged
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.labels.iter().map(|&l| l as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    fn run_to_fixpoint(g: &graphm_graph::EdgeList) -> Vec<VertexId> {
        let mut wcc = Wcc::new(g.num_vertices);
        loop {
            for e in &g.edges {
                if wcc.active().get(e.src as usize) {
                    wcc.process_edge(e);
                }
            }
            if wcc.end_iteration() {
                break;
            }
        }
        wcc.labels().to_vec()
    }

    #[test]
    fn ring_is_one_component() {
        let labels = run_to_fixpoint(&generators::ring(32));
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_disjoint_paths() {
        // 0->1->2 and 3->4->5 (symmetrized).
        let mut g = graphm_graph::EdgeList::new(6);
        for (s, t) in [(0u32, 1u32), (1, 2), (3, 4), (4, 5)] {
            g.edges.push(Edge::new(s, t));
        }
        let labels = run_to_fixpoint(&generators::symmetrize(&g));
        assert_eq!(&labels[..3], &[0, 0, 0]);
        assert_eq!(&labels[3..], &[3, 3, 3]);
    }

    #[test]
    fn iteration_cap_truncates() {
        // Stream the path's edges in reverse source order so labels can
        // only advance one hop per iteration (forward order would chain
        // the whole path within a single sweep).
        let mut g = generators::path(100);
        g.edges.reverse();
        let mut wcc = Wcc::new(100).with_max_iters(2);
        loop {
            for e in &g.edges {
                if wcc.active().get(e.src as usize) {
                    wcc.process_edge(e);
                }
            }
            if wcc.end_iteration() {
                break;
            }
        }
        assert_eq!(wcc.iterations(), 2);
        assert_ne!(wcc.labels()[99], 0, "label 0 cannot reach hop 99 in 2 rounds");
    }

    #[test]
    fn frontier_shrinks() {
        let g = generators::symmetrize(&generators::path(16));
        let mut wcc = Wcc::new(16);
        for e in &g.edges {
            if wcc.active().get(e.src as usize) {
                wcc.process_edge(e);
            }
        }
        wcc.end_iteration();
        assert!(wcc.active().count() < 16, "only updated vertices stay active");
        assert!(wcc.skips_inactive());
    }
}
