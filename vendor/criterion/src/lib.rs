//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter` — with a simple median-of-samples timer instead of
//! criterion's statistical machinery. Output is one line per benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Measurement configuration and entry point (criterion's main type).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, sample_size, throughput: None }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, |b| f(b));
        self
    }
}

/// Per-element/byte normalization for reported timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        std::hint::black_box(&out);
        self.samples.push(start.elapsed().as_secs_f64());
    }
}

/// Prevents the optimizer from discarding a value (criterion's black_box).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(samples + 1) };
    // Warmup sample, then measured samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {name}: (no samples)");
        return;
    }
    b.samples.sort_by(|a, b| a.total_cmp(b));
    let median = b.samples[b.samples.len() / 2];
    let rate = match tp {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / median)
        }
        _ => String::new(),
    };
    println!("  {name}: median {:.3} ms over {} samples{rate}", median * 1e3, b.samples.len());
}

/// Declares a group function running each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` for `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
