//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random`, and `Rng::random_range`.
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is all the workloads and generators require.

pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng::from_u64(seed)
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full domain for integers and bool).
pub trait StandardSample: Sized {
    fn sample_standard(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard(bits: u64) -> f64 {
        // 53 high bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard(bits: u64) -> f32 {
        ((bits >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl StandardSample for u64 {
    fn sample_standard(bits: u64) -> u64 {
        bits
    }
}

/// Half-open ranges samplable by an `Rng` (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the simple fallback is irrelevant here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, i64);

/// Object-safe generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// The user-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self.next_u64())
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let v = r.random_range(0usize..3);
            assert!(v < 3);
        }
    }
}
