//! Minimal, dependency-free stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, and
//! `Condvar::wait` takes `&mut MutexGuard`. Poisoned locks are unwrapped —
//! a panicked holder is a bug in this workspace, not something to recover.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion (std-backed).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can move the
/// underlying std guard out and back in place.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard already waiting");
        guard.inner = Some(self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock (std-backed).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }

    #[test]
    fn rwlock_basy() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
