//! Minimal, dependency-free stand-in for `rayon`.
//!
//! Exposes the `prelude` entry points the workspace uses
//! (`into_par_iter`, `flat_map_iter`) as sequential iterator adapters, so
//! call sites keep rayon's shape and can switch to the real crate when the
//! build environment gains network access.

pub mod prelude {
    /// `IntoParallelIterator`, sequentially: yields the ordinary iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// The subset of `ParallelIterator` adapters used by the workspace,
    /// as sequential equivalents.
    pub trait ParallelIterator: Iterator + Sized {
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_equivalents() {
        let v: Vec<usize> =
            (0..4usize).into_par_iter().flat_map_iter(|i| vec![i, i * 10]).collect();
        assert_eq!(v, vec![0, 0, 1, 10, 2, 20, 3, 30]);
    }
}
