//! Minimal, dependency-free stand-in for `rayon` with a **real** thread
//! pool.
//!
//! Exposes the `prelude` entry points the workspace uses
//! (`into_par_iter`, `flat_map_iter`, `map`, `collect`) with the same
//! call-site shape as the real crate, but executes on an in-tree
//! chunk-splitting pool: the input is materialized, split into chunks,
//! and the chunks are processed concurrently by a process-wide worker
//! pool (the submitting thread helps drain its own batch, so a
//! single-threaded pool degenerates to sequential execution and nested
//! use cannot deadlock). Chunk results are concatenated in order, so
//! output order — and therefore every deterministic test in the
//! workspace — is identical to sequential execution.
//!
//! Pool size follows `RAYON_NUM_THREADS` when set, otherwise
//! `std::thread::available_parallelism()`.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// The worker pool.
// ---------------------------------------------------------------------------

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    work_cv: Condvar,
}

/// A fixed-size worker pool executing type-erased closures.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    /// Total compute lanes: worker threads + the submitting thread.
    lanes: usize,
}

/// Per-batch completion tracking shared between the submitted tasks and
/// the blocked submitter.
struct Batch {
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn task_finished(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = true;
            drop(done);
            self.done_cv.notify_all();
        }
    }
}

impl ThreadPool {
    /// A pool with `lanes` total compute lanes (`lanes - 1` worker
    /// threads; the submitting thread is the last lane).
    pub fn new(lanes: usize) -> ThreadPool {
        let lanes = lanes.max(1);
        let shared =
            Arc::new(PoolShared { queue: Mutex::new(VecDeque::new()), work_cv: Condvar::new() });
        for i in 0..lanes - 1 {
            let shared = Arc::clone(&shared);
            // Workers are detached and park on the queue forever; they die
            // with the process, like rayon's global pool.
            let _ = std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || worker_loop(&shared));
        }
        ThreadPool { shared, lanes }
    }

    /// The process-wide pool, created on first use.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let lanes = std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                });
            ThreadPool::new(lanes)
        })
    }

    /// Total compute lanes (workers + submitter).
    pub fn num_threads(&self) -> usize {
        self.lanes
    }

    /// Runs every closure in `tasks` to completion, concurrently where
    /// lanes allow. Blocks until the whole batch has finished — which is
    /// what makes handing non-`'static` closures to the workers sound:
    /// everything they borrow outlives this call. The submitting thread
    /// drains the shared queue while it waits, so the batch completes
    /// even on a one-lane pool. Panics from tasks are resurfaced here.
    pub fn run_batch<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let batch = Arc::new(Batch {
            remaining: AtomicUsize::new(tasks.len()),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for task in tasks {
                let batch = Arc::clone(&batch);
                let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(task));
                    if let Err(payload) = result {
                        let mut slot = batch.panic.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(payload);
                    }
                    batch.task_finished();
                });
                // SAFETY: this function does not return until `remaining`
                // hits zero, i.e. until every wrapped task has run to
                // completion on some thread; all data the closures borrow
                // therefore strictly outlives every use. The lifetime is
                // erased only so the closures can sit in the 'static
                // worker queue meanwhile.
                let erased: Task = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(wrapped)
                };
                queue.push_back(erased);
            }
        }
        self.shared.work_cv.notify_all();
        // Help drain until our batch completes. Tasks from unrelated
        // batches may be executed here too — their submitters block the
        // same way, so their borrows are equally alive.
        loop {
            if *batch.done.lock().unwrap_or_else(|e| e.into_inner()) {
                break;
            }
            let task = {
                let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.pop_front()
            };
            match task {
                Some(task) => task(),
                None => {
                    // Queue drained: our remaining tasks are in flight on
                    // worker threads; wait for the last one's signal.
                    let mut flag = batch.done.lock().unwrap_or_else(|e| e.into_inner());
                    while !*flag {
                        flag = batch.done_cv.wait(flag).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
        let payload = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// An in-flight incremental batch created by [`ThreadPool::scope`]:
/// tasks are spawned one at a time (possibly interleaved with blocking
/// work on the submitting thread, e.g. chunk pacing) and all complete
/// before `scope` returns.
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    batch: Arc<Batch>,
    /// Invariant over `'scope`: spawned closures may borrow data that
    /// lives exactly as long as the `scope` call.
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Queues `task` for execution on the pool. The task may start
    /// immediately on a worker, concurrently with the scope body.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'scope) {
        self.batch.remaining.fetch_add(1, Ordering::AcqRel);
        let batch = Arc::clone(&self.batch);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = result {
                let mut slot = batch.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            batch.task_finished();
        });
        // SAFETY: `ThreadPool::scope` does not return until `remaining`
        // hits zero, i.e. until this task has run to completion on some
        // thread; everything it borrows therefore strictly outlives every
        // use. The lifetime is erased only so the closure can sit in the
        // 'static worker queue meanwhile (same argument as `run_batch`).
        let erased: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        let mut queue = self.pool.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(erased);
        drop(queue);
        // One task enqueued — one worker woken. (`run_batch` enqueues a
        // whole batch before its single notify_all; the scoped hot path
        // spawns per chunk, so a thundering herd here would be paid
        // thousands of times per sweep.)
        self.pool.shared.work_cv.notify_one();
    }
}

impl ThreadPool {
    /// Runs `body` with a [`Scope`] handle for spawning tasks
    /// incrementally, then blocks until every spawned task has finished
    /// (helping drain the shared queue while it waits, so a one-lane pool
    /// degenerates to sequential execution and nested use cannot
    /// deadlock). Unlike [`ThreadPool::run_batch`], tasks spawned early
    /// start running while the body is still producing later ones — the
    /// shape the paced chunk fan-out needs. Panics from tasks (and from
    /// the body) are resurfaced here.
    pub fn scope<'scope, R>(&self, body: impl FnOnce(&Scope<'_, 'scope>) -> R) -> R {
        let batch = Arc::new(Batch {
            // One guard unit for the body itself, so workers finishing
            // early cannot mark the batch done while spawns are pending.
            remaining: AtomicUsize::new(1),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope =
            Scope { pool: self, batch: Arc::clone(&batch), _marker: std::marker::PhantomData };
        let body_result = std::panic::catch_unwind(AssertUnwindSafe(|| body(&scope)));
        batch.task_finished(); // Drop the body's guard unit.
                               // Help drain until the batch completes (same loop as run_batch).
        loop {
            if *batch.done.lock().unwrap_or_else(|e| e.into_inner()) {
                break;
            }
            let task = {
                let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.pop_front()
            };
            match task {
                Some(task) => task(),
                None => {
                    let mut flag = batch.done.lock().unwrap_or_else(|e| e.into_inner());
                    while !*flag {
                        flag = batch.done_cv.wait(flag).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
        let payload = batch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
        match body_result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                match queue.pop_front() {
                    Some(task) => break task,
                    None => queue = shared.work_cv.wait(queue).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        task();
    }
}

/// Splits `items` into chunks, maps each chunk on the pool with
/// `per_chunk`, and returns the per-chunk outputs in input order.
fn run_chunked<T, R, F>(pool: &ThreadPool, items: Vec<T>, per_chunk: F) -> Vec<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> Vec<R> + Sync,
{
    let lanes = pool.num_threads();
    if lanes <= 1 || items.len() <= 1 {
        return vec![per_chunk(items)];
    }
    // A few chunks per lane evens out skewed per-item cost.
    let chunks = (lanes * 4).min(items.len());
    let per = items.len().div_ceil(chunks);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(chunks);
    let mut items = items.into_iter();
    loop {
        let part: Vec<T> = items.by_ref().take(per).collect();
        if part.is_empty() {
            break;
        }
        parts.push(part);
    }
    let n = parts.len();
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let per_chunk = &per_chunk;
    let slots_ref = &slots;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = parts
        .into_iter()
        .enumerate()
        .map(|(i, part)| {
            Box::new(move || {
                let out = per_chunk(part);
                *slots_ref[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run_batch(tasks);
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(|e| e.into_inner()).expect("chunk task completed")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The parallel-iterator facade.
// ---------------------------------------------------------------------------

/// A materialized parallel iterator over `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// rayon's `flat_map_iter`: `f` produces a serial iterator per item.
    pub fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<T, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(T) -> U + Sync,
    {
        FlatMapIter { items: self.items, f }
    }

    /// rayon's `map`.
    pub fn map<R, F>(self, f: F) -> MapIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapIter { items: self.items, f }
    }

    /// Collects the items themselves.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Pending `flat_map_iter`; executes on [`ThreadPool::global`] at
/// `collect`.
pub struct FlatMapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> FlatMapIter<T, F>
where
    T: Send,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(T) -> U + Sync,
{
    /// Runs the flat-map on the pool; output order matches sequential.
    pub fn collect<C: FromIterator<U::Item>>(self) -> C {
        let f = self.f;
        let outputs = run_chunked(ThreadPool::global(), self.items, |chunk| {
            chunk.into_iter().flat_map(&f).collect()
        });
        outputs.into_iter().flatten().collect()
    }
}

/// Pending `map`; executes on [`ThreadPool::global`] at `collect`.
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> MapIter<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Runs the map on the pool; output order matches sequential.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        let outputs = run_chunked(ThreadPool::global(), self.items, |chunk| {
            chunk.into_iter().map(&f).collect()
        });
        outputs.into_iter().flatten().collect()
    }
}

/// `IntoParallelIterator`: materializes the input for chunk-splitting.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

/// The entry-point traits, rayon-style.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    #[test]
    fn matches_sequential_order() {
        let par: Vec<usize> =
            (0..4usize).into_par_iter().flat_map_iter(|i| vec![i, i * 10]).collect();
        assert_eq!(par, vec![0, 0, 1, 10, 2, 20, 3, 30]);
        let seq: Vec<usize> = (0..1000usize).flat_map(|i| vec![i, i * 3 + 1]).collect();
        let par: Vec<usize> =
            (0..1000usize).into_par_iter().flat_map_iter(|i| vec![i, i * 3 + 1]).collect();
        assert_eq!(par, seq);
        let mapped: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(mapped, (0..257).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn borrows_non_static_data() {
        let data: Vec<usize> = (0..512).collect();
        let doubled: Vec<usize> =
            (0..data.len()).into_par_iter().flat_map_iter(|i| [data[i] * 2]).collect();
        assert_eq!(doubled[511], 1022);
    }

    #[test]
    fn multi_lane_pool_runs_tasks_on_distinct_threads() {
        // An explicit 4-lane pool (the global pool may be 1-lane on small
        // machines): 16 slow chunk tasks must land on >= 2 threads.
        let pool = ThreadPool::new(4);
        let ids = Mutex::new(HashSet::new());
        let started = AtomicUsize::new(0);
        let outputs = run_chunked(&pool, (0..16usize).collect(), |chunk| {
            started.fetch_add(1, Ordering::SeqCst);
            ids.lock().unwrap().insert(std::thread::current().id());
            // Linger so parallel lanes overlap (bounded to keep CI fast).
            let t = Instant::now();
            while started.load(Ordering::SeqCst) < 2 && t.elapsed() < Duration::from_secs(5) {
                std::thread::yield_now();
            }
            chunk
        });
        let flat: Vec<usize> = outputs.into_iter().flatten().collect();
        assert_eq!(flat, (0..16).collect::<Vec<_>>());
        assert!(ids.lock().unwrap().len() >= 2, "expected >= 2 worker threads");
    }

    #[test]
    fn nested_collect_does_not_deadlock() {
        let v: Vec<usize> = (0..8usize)
            .into_par_iter()
            .flat_map_iter(|i| {
                let inner: Vec<usize> =
                    (0..4usize).into_par_iter().map(move |j| i * 4 + j).collect();
                inner
            })
            .collect();
        assert_eq!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn scope_spawns_incrementally_and_waits() {
        let pool = ThreadPool::new(4);
        let data: Vec<usize> = (0..64).collect();
        let slots: Vec<Mutex<usize>> = (0..64).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for i in 0..64 {
                let data = &data;
                let slots = &slots;
                s.spawn(move || {
                    *slots[i].lock().unwrap() = data[i] * 2;
                });
            }
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot.lock().unwrap(), i * 2);
        }
    }

    #[test]
    fn scope_on_one_lane_pool_degenerates_to_sequential() {
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        let r = pool.scope(|s| {
            for i in 1..=10usize {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(i, Ordering::SeqCst);
                });
            }
            "body result"
        });
        assert_eq!(r, "body result");
        assert_eq!(sum.load(Ordering::SeqCst), 55);
    }

    #[test]
    fn scope_task_panics_propagate() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8usize {
                    s.spawn(move || {
                        if i == 5 {
                            panic!("scoped boom");
                        }
                    });
                }
            });
        }));
        assert!(result.is_err(), "a panic inside a scoped task must surface");
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64usize)
                .into_par_iter()
                .map(|i| if i == 33 { panic!("boom") } else { i })
                .collect();
        });
        assert!(result.is_err(), "panic inside a parallel map must surface");
    }
}
