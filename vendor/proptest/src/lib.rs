//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` parameters, range and tuple
//! strategies, `any::<bool>()`, `collection::vec` / `collection::btree_set`,
//! and `prop_assert!` / `prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! panics with the regular assert message.

/// Cases generated per property (real proptest defaults to 256; 64 keeps
/// the heavier cache-simulator properties fast in CI).
pub const NUM_CASES: usize = 64;

pub mod test_runner {
    use rand::{Rng, SeedableRng, StdRng};

    /// Deterministic case generator.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(seed: u64) -> TestRng {
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.inner.random::<u64>()
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for "any value of T" (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with *up to* `size` elements
    /// (collisions deduplicate, as in real proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Per-test deterministic seed from the test name.
                let mut _seed = 0xcbf29ce484222325u64;
                for b in stringify!($name).bytes() {
                    _seed = (_seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                let mut _rng = $crate::test_runner::TestRng::deterministic(_seed);
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut _rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(x in 3u32..10, pair in (0usize..4, any::<bool>())) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(0u64..5, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
