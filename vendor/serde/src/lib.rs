//! Minimal, dependency-free stand-in for `serde`.
//!
//! The real serde defines `Serialize` abstractly over serializers; this
//! workspace only ever serializes to JSON, so the trait lives in the
//! vendored `serde_json` and is re-exported here. Types implement it by
//! hand (the derive macro is not vendored).

pub use serde_json::Serialize;
