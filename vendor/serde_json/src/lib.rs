//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Implements the surface the workspace uses: [`Value`], [`Map`], the
//! [`json!`] macro for flat literals, [`to_string`] / [`to_string_pretty`],
//! [`from_str`] parsing (the `graphm-server` line protocol decodes with
//! it), and a [`Serialize`] trait (re-exported through the vendored
//! `serde` crate) that types implement by hand instead of deriving.
//!
//! Finite `f64`s round-trip exactly: serialization uses Rust's
//! shortest-round-trip formatting and parsing goes through
//! `str::parse::<f64>`, which is correctly rounded, so
//! `from_str(&to_string(&v))` recovers the original bits. Non-finite
//! values serialize as `null` (as the real serde_json refuses them);
//! protocols that must carry them encode them out-of-band.

use std::collections::BTreeMap;
use std::fmt;

/// Object storage. serde_json's `Map` preserves insertion order by default;
/// a BTreeMap's sorted order is deterministic too, which is what the bench
/// JSON records actually need.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A parsed/constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_number(v: f64, out: &mut String) {
        if v.is_finite() {
            if v == 0.0 && v.is_sign_negative() {
                // The integer fast-path below would drop the sign.
                out.push_str("-0.0");
            } else if v == v.trunc() && v.abs() < 1e15 {
                out.push_str(&format!("{}", v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        } else {
            // JSON has no Inf/NaN; serde_json refuses them, we emit null.
            out.push_str("null");
        }
    }

    fn write(&self, out: &mut String, pretty: bool, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                for _ in 0..d {
                    out.push_str("  ");
                }
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(v) => Self::write_number(*v, out),
            Value::String(s) => Self::write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if pretty {
                            // newline added by pad below
                        }
                    }
                    pad(out, depth + 1);
                    item.write(out, pretty, depth + 1);
                }
                pad(out, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    Self::write_escaped(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, pretty, depth + 1);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }

    fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write(&mut out, pretty, 0);
        out
    }

    /// The string slice, when this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as an unsigned integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strict upper bound: `u64::MAX as f64` rounds up to 2^64,
            // which is NOT representable as a u64 (the saturating cast
            // would silently return u64::MAX).
            Value::Number(v)
                if *v >= 0.0 && v.trunc() == *v && *v < 18_446_744_073_709_551_616.0 =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean, when this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The map, when this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// Types serializable to a JSON [`Value`]. The real serde derives this;
/// here the handful of implementing types write it by hand.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect())
    }
}

/// Serialization/parse error. Serialization in the vendored implementation
/// is infallible, but the real crate's `Result` shape is kept so call
/// sites stay source-compatible; parsing reports position + cause.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.msg.is_empty() {
            f.write_str("json error")
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Compact serialization.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render(false))
}

/// Pretty (2-space indented) serialization.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render(true))
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos -= usize::from(self.pos > 0);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_keyword("null", Value::Null),
            Some(b't') => self.expect_keyword("true", Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input is a &str, so the
                    // bytes are valid; find the char at pos-1).
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let s = std::str::from_utf8(&self.bytes[start..start + len])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

/// Parses a JSON document into a [`Value`]. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Builds a [`Value`] from a flat literal: `json!(expr)`,
/// `json!({ "k": expr, ... })`, or `json!([expr, ...])`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:tt : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($k.to_string(), $crate::Value::from($v)); )*
        $crate::Value::Object(map)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($v)),* ])
    };
    ($v:expr) => { $crate::Value::from($v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_literal() {
        let rows = vec![json!(1.0), json!("two")];
        let v = json!({ "a": 1.5, "b": "x", "rows": rows });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1.5,"b":"x","rows":[1,"two"]}"#);
    }

    #[test]
    fn pretty_nests() {
        let v = json!({ "k": 3usize });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": 3"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&json!(3.0)).unwrap(), "3");
        assert_eq!(to_string(&json!(3.25)).unwrap(), "3.25");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string(&json!("a\"b\n")).unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("3").unwrap(), Value::Number(3.0));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(from_str(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a":[1,{"b":null},"x"],"c":true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[1].get("b").unwrap().is_null());
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(from_str(r#""a\"b\n\tA""#).unwrap().as_str(), Some("a\"b\n\tA"));
        // Surrogate pair: U+1F600.
        assert_eq!(from_str(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(from_str("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", r#"{"a""#, "tru", "1 2", r#""\x""#, "{'a':1}", "\"\u{1}\""] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn finite_f64_round_trips_exactly() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX, -12345.6789e-12, 0.1 + 0.2] {
            let s = to_string(&json!(v)).unwrap();
            let back = from_str(&s).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn round_trips_serialized_objects() {
        let v = json!({ "a": 1.5, "b": "x\n", "rows": vec![json!(1.0), json!("two")] });
        let back = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn accessors() {
        let v = json!({ "n": 3.0, "s": "t", "b": true });
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
        // 2^64 itself is out of range and must not saturate to u64::MAX.
        assert_eq!(from_str("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Value::Number(2f64.powi(63)).as_u64(), Some(1 << 63));
        assert!(v.as_object().is_some());
        assert!(v.as_array().is_none());
    }
}
