//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Implements the surface the workspace uses: [`Value`], [`Map`], the
//! [`json!`] macro for flat literals, [`to_string`] / [`to_string_pretty`],
//! and a [`Serialize`] trait (re-exported through the vendored `serde`
//! crate) that types implement by hand instead of deriving.

use std::collections::BTreeMap;
use std::fmt;

/// Object storage. serde_json's `Map` preserves insertion order by default;
/// a BTreeMap's sorted order is deterministic too, which is what the bench
/// JSON records actually need.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A parsed/constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_number(v: f64, out: &mut String) {
        if v.is_finite() {
            if v == v.trunc() && v.abs() < 1e15 {
                out.push_str(&format!("{}", v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        } else {
            // JSON has no Inf/NaN; serde_json refuses them, we emit null.
            out.push_str("null");
        }
    }

    fn write(&self, out: &mut String, pretty: bool, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                for _ in 0..d {
                    out.push_str("  ");
                }
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(v) => Self::write_number(*v, out),
            Value::String(s) => Self::write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if pretty {
                            // newline added by pad below
                        }
                    }
                    pad(out, depth + 1);
                    item.write(out, pretty, depth + 1);
                }
                pad(out, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    Self::write_escaped(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, pretty, depth + 1);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }

    fn render(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write(&mut out, pretty, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(false))
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// Types serializable to a JSON [`Value`]. The real serde derives this;
/// here the handful of implementing types write it by hand.
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json_value())).collect())
    }
}

/// Serialization error. The vendored implementation is infallible, but the
/// real crate's `Result` shape is kept so call sites stay source-compatible.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Compact serialization.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render(false))
}

/// Pretty (2-space indented) serialization.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render(true))
}

/// Builds a [`Value`] from a flat literal: `json!(expr)`,
/// `json!({ "k": expr, ... })`, or `json!([expr, ...])`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:tt : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($k.to_string(), $crate::Value::from($v)); )*
        $crate::Value::Object(map)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($v)),* ])
    };
    ($v:expr) => { $crate::Value::from($v) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object_literal() {
        let rows = vec![json!(1.0), json!("two")];
        let v = json!({ "a": 1.5, "b": "x", "rows": rows });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1.5,"b":"x","rows":[1,"two"]}"#);
    }

    #[test]
    fn pretty_nests() {
        let v = json!({ "k": 3usize });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": 3"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&json!(3.0)).unwrap(), "3");
        assert_eq!(to_string(&json!(3.25)).unwrap(), "3.25");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string(&json!("a\"b\n")).unwrap(), r#""a\"b\n""#);
    }
}
