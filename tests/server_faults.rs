//! Read-path fault injection: an I/O error injected at a store read-path
//! boundary must surface as a *per-job* failure — a `JobReport` with a
//! typed error — never as a daemon abort. Co-batched jobs that did not
//! need the failed load stay bit-identical to an uninjected run, and the
//! daemon keeps serving the very next round.
//!
//! Failpoint arming is process-global, so every test here serializes on
//! one mutex and resets the global state on entry and exit.

use graphm::graph::delta::DeltaRecord;
use graphm::graph::{failpoint, generators, MemoryProfile};
use graphm::server::{Client, ExecutionMode, Server, ServerConfig};
use graphm::store::Convert;
use graphm::workloads::{AlgoKind, JobSpec};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes the tests in this binary (cargo runs them on parallel
/// threads, but `failpoint::arm_global` is one process-wide slot).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::reset_global();
    guard
}

fn store_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-server-faults-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn fault_store(name: &str) -> std::path::PathBuf {
    let g = generators::rmat(600, 5200, generators::RmatParams::GRAPH500, 33);
    let dir = store_dir(name);
    Convert::grid(4).write(&g, &dir).unwrap();
    dir
}

fn config(dir: &std::path::Path, name: &str, batch_ms: u64) -> ServerConfig {
    let mut config = ServerConfig::new(dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-flt-{name}-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(batch_ms);
    config
}

fn pagerank(max_iters: usize) -> JobSpec {
    JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters }
}

fn assert_bit_identical(got: &graphm::core::JobReport, want: &graphm::core::JobReport) {
    assert_eq!(got.name, want.name);
    assert_eq!(got.iterations, want.iterations);
    assert_eq!(got.edges_processed, want.edges_processed);
    assert_eq!(got.values.len(), want.values.len());
    for (v, (a, b)) in got.values.iter().zip(&want.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "vertex {v} ({})", got.name);
    }
}

/// The deterministic fault contract, end to end over the socket:
/// a `read:load` failure in sweep 2 fails exactly the job that still
/// needed the partition. Its co-batched neighbor — retired after sweep
/// 1 — publishes a report bit-identical to the uninjected run, timings
/// included, and the daemon serves the next round normally.
#[test]
fn deterministic_read_fault_fails_one_job_and_spares_its_batch() {
    let _guard = serialized();
    let dir = fault_store("det");

    // Probe daemon: count the `read:load` crossings of one sweep, so the
    // injection can be aimed at the first load of sweep 2. (The count is
    // a property of the store layout, not hardcoded here.)
    let probe = Server::start(config(&dir, "det-probe", 5)).unwrap();
    let mut client = Client::connect_unix(probe.socket_path().unwrap()).unwrap();
    let h0 = failpoint::global_hits();
    let id = client.submit(&pagerank(1)).unwrap();
    client.wait(id).unwrap();
    let per_sweep = (failpoint::global_hits() - h0) as usize;
    assert!(per_sweep > 0, "the read path must cross the failpoint");
    probe.shutdown();

    // Uninjected reference: round 1 co-batches A (1 sweep) + B (4
    // sweeps); round 2 runs B alone (the post-fault recovery round).
    let reference = Server::start(config(&dir, "det-ref", 600)).unwrap();
    let mut client = Client::connect_unix(reference.socket_path().unwrap()).unwrap();
    let ra = client.submit(&pagerank(1)).unwrap();
    let rb = client.submit(&pagerank(4)).unwrap();
    let ref_a = client.wait(ra).unwrap();
    let ref_b = client.wait(rb).unwrap();
    let rb2 = client.submit(&pagerank(4)).unwrap();
    let ref_b2 = client.wait(rb2).unwrap();
    assert!(ref_a.error.is_none() && ref_b.error.is_none() && ref_b2.error.is_none());
    reference.shutdown();

    // Injected run: the (per_sweep + 1)-th crossing is the first load of
    // sweep 2 — after A retired, while B still runs.
    failpoint::arm_global("read:load", per_sweep);
    let server = Server::start(config(&dir, "det-inj", 600)).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();
    let ia = client.submit(&pagerank(1)).unwrap();
    let ib = client.submit(&pagerank(4)).unwrap();
    let inj_a = client.wait(ia).unwrap();
    let inj_b = client.wait(ib).unwrap();

    // B carries the injected error on its report; nothing crashed.
    let err = inj_b.error.as_deref().expect("the injected job must fail");
    assert!(err.contains(failpoint::INJECTED_MARKER), "typed injected error, got: {err}");
    assert!(!failpoint::global_armed(), "the armed fault was consumed");

    // A is bit-identical to the uninjected run — values AND the shared
    // virtual timeline (the failure happened after A retired).
    assert!(inj_a.error.is_none());
    assert_bit_identical(&inj_a, &ref_a);
    assert_eq!(inj_a.submit_ns.to_bits(), ref_a.submit_ns.to_bits());
    assert_eq!(inj_a.finish_ns.to_bits(), ref_a.finish_ns.to_bits());
    assert_eq!(inj_a.clock.compute_ns.to_bits(), ref_a.clock.compute_ns.to_bits());
    assert_eq!(inj_a.clock.disk_ns.to_bits(), ref_a.clock.disk_ns.to_bits());
    assert_eq!(inj_a.clock.sync_ns.to_bits(), ref_a.clock.sync_ns.to_bits());

    // The daemon keeps serving: the failed spec resubmitted in the next
    // round runs clean and matches the reference recovery round
    // bit-for-bit on values. (Virtual *timings* legitimately differ —
    // the failed B consumed less virtual time than the completed one.)
    client.ping().unwrap();
    let ib2 = client.submit(&pagerank(4)).unwrap();
    let inj_b2 = client.wait(ib2).unwrap();
    assert!(inj_b2.error.is_none());
    assert_bit_identical(&inj_b2, &ref_b2);

    let stats = server.stats();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 2, "completions count successes, not the failed job");

    server.shutdown();
    failpoint::reset_global();
    std::fs::remove_dir_all(&dir).ok();
}

/// Wallclock mode: an injected load failure fails the job with a typed
/// error in its report; the threaded runtime survives and the identical
/// resubmission produces bit-identical values.
#[test]
fn wallclock_read_fault_fails_job_daemon_recovers() {
    let _guard = serialized();
    let dir = fault_store("wall");
    let mut cfg = config(&dir, "wall", 5);
    cfg.mode = ExecutionMode::Wallclock;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    // Uninjected reference on the same daemon.
    let rid = client.submit(&pagerank(4)).unwrap();
    let reference = client.wait(rid).unwrap();
    assert!(reference.error.is_none());

    // First load of the next job trips.
    failpoint::arm_global("read:load", 0);
    let fid = client.submit(&pagerank(4)).unwrap();
    let failed = client.wait(fid).unwrap();
    let err = failed.error.as_deref().expect("injected job must fail");
    assert!(err.contains(failpoint::INJECTED_MARKER), "typed injected error, got: {err}");

    // Consumed fault; daemon alive; clean resubmission is bit-identical.
    client.ping().unwrap();
    let cid = client.submit(&pagerank(4)).unwrap();
    let clean = client.wait(cid).unwrap();
    assert!(clean.error.is_none());
    assert_bit_identical(&clean, &reference);
    assert_eq!(server.stats().jobs_failed, 1);

    server.shutdown();
    failpoint::reset_global();
    std::fs::remove_dir_all(&dir).ok();
}

/// A prefetch-path fault degrades to "no hint" — the job succeeds with
/// no error and unchanged values; nothing fails loudly on an advisory
/// path.
#[test]
fn wallclock_prefetch_fault_degrades_to_no_hint() {
    let _guard = serialized();
    let dir = fault_store("prefetch");
    let mut cfg = config(&dir, "prefetch", 5);
    cfg.mode = ExecutionMode::Wallclock;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let rid = client.submit(&pagerank(4)).unwrap();
    let reference = client.wait(rid).unwrap();

    failpoint::arm_global("read:prefetch", 0);
    let id = client.submit(&pagerank(4)).unwrap();
    let report = client.wait(id).unwrap();
    assert!(report.error.is_none(), "a prefetch fault must not fail the job: {:?}", report.error);
    assert_bit_identical(&report, &reference);
    assert!(
        !failpoint::global_armed(),
        "the prefetch path must actually cross (and consume) the failpoint"
    );
    assert_eq!(server.stats().jobs_failed, 0);

    server.shutdown();
    failpoint::reset_global();
    std::fs::remove_dir_all(&dir).ok();
}

/// A fault at segment-open time fails `Server::start` with the typed
/// injected error — a broken store is a startup error, not a half-alive
/// daemon — and the same store opens clean once the fault is gone.
#[test]
fn startup_segment_open_fault_fails_start_cleanly() {
    let _guard = serialized();
    let dir = fault_store("startup");

    failpoint::arm_global("read:segment_open", 0);
    match Server::start(config(&dir, "startup-a", 5)) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains(failpoint::INJECTED_MARKER), "typed startup error, got: {msg}")
        }
        Ok(_) => panic!("Server::start must fail while the open path is faulted"),
    }

    // Nothing was corrupted: the identical config starts clean.
    failpoint::reset_global();
    let server = Server::start(config(&dir, "startup-b", 5)).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();
    let id = client.submit(&pagerank(2)).unwrap();
    assert!(client.wait(id).unwrap().error.is_none());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A fault while opening a freshly published delta generation pins the
/// served generation (jobs keep succeeding on the old view) and the next
/// round's refresh adopts the new generation once the fault clears.
#[test]
fn delta_refresh_fault_pins_generation_then_recovers() {
    let _guard = serialized();
    let dir = fault_store("delta");
    let mut cfg = config(&dir, "delta", 5);
    cfg.enable_ingest = true;
    let server = Server::start(cfg).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let gen0 = client.health().unwrap().generation;
    let id = client.submit(&pagerank(2)).unwrap();
    assert!(client.wait(id).unwrap().error.is_none());

    // Publish a new generation, then fault the path that opens it.
    client.ingest(&[DeltaRecord::insert(3, 4, 1.0)]).unwrap();
    client.ingest_commit().unwrap();
    failpoint::arm_global("read:delta_open", 0);

    // The round-start refresh trips, the daemon serves the pinned
    // generation, and the job still succeeds.
    let id = client.submit(&pagerank(2)).unwrap();
    assert!(client.wait(id).unwrap().error.is_none());
    assert!(!failpoint::global_armed(), "the refresh must cross (and consume) the failpoint");
    assert_eq!(client.health().unwrap().generation, gen0, "generation pinned under the fault");

    // Fault consumed: the next round adopts the published generation.
    let id = client.submit(&pagerank(2)).unwrap();
    assert!(client.wait(id).unwrap().error.is_none());
    let gen_after = client.health().unwrap().generation;
    assert!(gen_after > gen0, "refresh recovers after the fault ({gen_after} vs {gen0})");
    assert_eq!(server.stats().jobs_failed, 0);

    server.shutdown();
    failpoint::reset_global();
    std::fs::remove_dir_all(&dir).ok();
}
