//! Durable-ingest crash and race harness.
//!
//! Three families of tests over the WAL + writer-lease publish path:
//!
//! 1. **Crash matrix** — a clean publish records the ordered failpoint
//!    trace of every fsync/rename boundary it crosses; each boundary is
//!    then re-run with a crash injected exactly there, the writer is
//!    abandoned mid-flight, and the reopened store must read bit-identical
//!    to either the pre-publish or the post-publish generation — never
//!    anything in between. Boundaries strictly after the WAL sync must
//!    recover *forward* (the logged batch replays into the identical
//!    generation).
//! 2. **Writer races** — a second `DeltaWriter` on a live store fails with
//!    a typed `LeaseHeld`; a fenced writer whose lease was taken over gets
//!    `EpochFenced`/`LeaseLost`, never a silent lost update.
//! 3. **Concurrent daemon ingest** — N client threads group-commit
//!    interleaved insert/delete batches through one ingest-enabled daemon
//!    while jobs run; the final merged store equals a serial reference
//!    replay, and every mid-stream reader snapshot is bit-identical to
//!    some published generation.

use graphm::core::PartitionSource;
use graphm::graph::delta::{apply_delta_to_edge_list, gen_manifest_file_name};
use graphm::graph::{failpoint, generators, DeltaRecord, EdgeList, GraphError, MemoryProfile};
use graphm::server::{Client, Server, ServerConfig};
use graphm::store::{CompactionPolicy, Convert, DeltaWriter, DiskGridSource, LeaseConfig};
use graphm::workloads::{AlgoKind, JobSpec};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn store_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-ingest-crash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// An edge as a bit-comparable triple (`weight` by its raw bits, so two
/// stores agree only when every byte of the merged view agrees).
type EdgeBits = (u32, u32, u32);

/// The store's merged view in partition-major order — the exact edge
/// stream a reader consumes. Equal vectors ⇒ bit-identical generations.
fn read_merged(dir: &Path) -> (u64, Vec<EdgeBits>) {
    let src = DiskGridSource::open(dir).expect("open store for inspection");
    let mut edges = Vec::new();
    for pid in 0..src.num_partitions() {
        edges.extend(src.load(pid).iter().map(|e| (e.src, e.dst, e.weight.to_bits())));
    }
    (src.generation(), edges)
}

/// Same view as an order-insensitive multiset (for comparisons against an
/// `EdgeList` reference, whose edge order is not partition-major).
fn sorted_multiset(edges: &[EdgeBits]) -> Vec<EdgeBits> {
    let mut v = edges.to_vec();
    v.sort_unstable();
    v
}

fn edge_list_multiset(g: &EdgeList) -> Vec<EdgeBits> {
    let mut v: Vec<EdgeBits> = g.edges.iter().map(|e| (e.src, e.dst, e.weight.to_bits())).collect();
    v.sort_unstable();
    v
}

/// The deterministic mutation batch every crash-matrix scenario publishes:
/// real base edges deleted, fresh edges inserted across all partitions.
fn crash_batch(g: &EdgeList) -> Vec<DeltaRecord> {
    let mut records = Vec::new();
    for e in g.edges.iter().step_by(173).take(8) {
        records.push(DeltaRecord::delete(e.src, e.dst));
    }
    let nv = g.num_vertices;
    for i in 0..30u32 {
        records.push(DeltaRecord::insert((i * 29) % nv, (i * 83 + 11) % nv, 2.5));
    }
    records
}

fn stage(writer: &mut DeltaWriter, records: &[DeltaRecord]) {
    for r in records {
        if r.op == graphm::graph::delta::DELTA_OP_DELETE {
            writer.delete(r.src, r.dst).unwrap();
        } else {
            writer.insert(r.src, r.dst, r.weight).unwrap();
        }
    }
}

/// After `retire_older_generations`, the directory must hold *only* live
/// infrastructure, the generation-0 base, and files of the current
/// generation — a crash plus recovery must never strand an orphan.
fn assert_no_orphans(dir: &Path, generation: u64) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_str().unwrap().to_string();
        let base_seg = name.starts_with("part-") && name.ends_with(".seg") && !name.contains("-g");
        let current_delta = generation > 0
            && name.starts_with(&format!("delta-{generation:06}-"))
            && name.ends_with(".dseg");
        let current_manifest = generation > 0 && name == gen_manifest_file_name(generation);
        let allowed = matches!(name.as_str(), "manifest.bin" | "CURRENT" | "wal.log" | "EPOCH")
            || base_seg
            || current_delta
            || current_manifest;
        assert!(allowed, "orphan file {name:?} survived retirement at generation {generation}");
    }
}

/// The crash matrix. One clean traced publish enumerates every
/// fsync/rename boundary; each boundary then gets its own store copy, an
/// armed failpoint, a mid-publish "kill", and a forced-takeover recovery
/// whose merged view must be bit-identical to the pre- or post-publish
/// generation. From the WAL sync onward the direction is pinned: the
/// batch is durable, so recovery must land on the post-publish state.
#[test]
fn crash_matrix_recovers_pre_or_post_at_every_boundary() {
    let g = generators::rmat(300, 2600, generators::RmatParams::GRAPH500, 33);
    let records = crash_batch(&g);

    // Pre-publish reference: the untouched generation-0 base.
    let pre_dir = store_dir("matrix-pre");
    Convert::grid(3).write(&g, &pre_dir).unwrap();
    let (pre_gen, pre_edges) = read_merged(&pre_dir);
    assert_eq!(pre_gen, 0);
    std::fs::remove_dir_all(&pre_dir).ok();

    // Post-publish reference + boundary enumeration from one clean run.
    let post_dir = store_dir("matrix-post");
    Convert::grid(3).write(&g, &post_dir).unwrap();
    let mut writer = DeltaWriter::open(&post_dir).unwrap().with_policy(CompactionPolicy::never());
    stage(&mut writer, &records);
    failpoint::reset();
    failpoint::record();
    assert_eq!(writer.publish().unwrap(), 1);
    let trace = failpoint::trace();
    failpoint::reset();
    drop(writer);
    let (post_gen, post_edges) = read_merged(&post_dir);
    assert_eq!(post_gen, 1);
    assert_ne!(pre_edges, post_edges, "the batch must change the merged view");
    std::fs::remove_dir_all(&post_dir).ok();

    // The publish path must expose all of its durability boundaries; a
    // new fsync/rename added later grows this trace (and the matrix)
    // automatically, but silently *losing* coverage is a bug.
    assert!(trace.len() >= 10, "suspiciously short boundary trace: {trace:?}");
    for required in ["wal.frame.written", "wal.synced", "current.renamed", "wal.reset.truncated"] {
        assert!(trace.iter().any(|p| p == required), "{required} missing from {trace:?}");
    }
    let wal_synced = trace.iter().position(|p| p == "wal.synced").unwrap();

    for (i, point) in trace.iter().enumerate() {
        // Arm the i-th crossing: skip as many earlier crossings of the
        // same point as the clean trace saw before index i.
        let skip = trace[..i].iter().filter(|p| *p == point).count();
        let dir = store_dir(&format!("matrix-{i}"));
        Convert::grid(3).write(&g, &dir).unwrap();
        let mut w = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
        stage(&mut w, &records);
        failpoint::reset();
        failpoint::arm(point, skip);
        let err = w.publish().expect_err("armed boundary must abort the publish");
        assert!(failpoint::is_injected(&err), "crossing {i} ({point}): real error {err}");
        failpoint::reset();
        // Abandon mid-flight: lease file and WAL stay exactly as a killed
        // process would leave them.
        w.crash();

        let recovered = DeltaWriter::open_with(&dir, LeaseConfig::force_takeover())
            .expect("recovery open after crash")
            .with_policy(CompactionPolicy::never());
        let (gen, merged) = read_merged(&dir);
        let is_pre = merged == pre_edges;
        let is_post = merged == post_edges;
        assert!(
            is_pre || is_post,
            "crossing {i} ({point}): recovered generation {gen} is neither the \
             pre- nor the post-publish state"
        );
        if i >= wal_synced {
            // The WAL frame is durable: recovery must replay it forward
            // into the bit-identical published generation.
            assert!(is_post, "crossing {i} ({point}): durable batch rolled back");
            assert_eq!(gen, 1, "crossing {i} ({point})");
        }
        // Whatever half-written files the crash left, retirement must
        // sweep the directory back to exactly the live set.
        recovered.retire_older_generations().unwrap();
        assert_no_orphans(&dir, gen);
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A crash can also lose WAL bytes that were written but never synced.
/// Simulate it by truncating the log mid-frame after a crash at the
/// frame-write boundary: replay must stop at the clean prefix (here, the
/// empty log) and roll the batch back to the pre-publish generation —
/// after which the same batch publishes again bit-identically.
#[test]
fn torn_wal_tail_rolls_back_then_republished_batch_is_identical() {
    let g = generators::rmat(300, 2600, generators::RmatParams::GRAPH500, 33);
    let records = crash_batch(&g);

    let post_dir = store_dir("torn-post");
    Convert::grid(3).write(&g, &post_dir).unwrap();
    let mut writer = DeltaWriter::open(&post_dir).unwrap().with_policy(CompactionPolicy::never());
    stage(&mut writer, &records);
    writer.publish().unwrap();
    drop(writer);
    let (_, post_edges) = read_merged(&post_dir);
    std::fs::remove_dir_all(&post_dir).ok();

    // Chop progressively more of the torn frame away: down to one byte
    // past the header, and down to the bare header.
    for keep_past_header in [1usize, 0] {
        let dir = store_dir(&format!("torn-{keep_past_header}"));
        Convert::grid(3).write(&g, &dir).unwrap();
        let mut w = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
        stage(&mut w, &records);
        failpoint::reset();
        failpoint::arm("wal.frame.written", 0);
        let err = w.publish().expect_err("armed frame write must abort");
        assert!(failpoint::is_injected(&err), "{err}");
        failpoint::reset();
        w.crash();

        // The unsynced tail evaporates with the "power loss".
        let wal_path = dir.join("wal.log");
        let header = graphm::store::wal::WAL_MAGIC.len() as u64;
        let torn_len = header + keep_past_header as u64;
        assert!(std::fs::metadata(&wal_path).unwrap().len() > torn_len);
        let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(torn_len).unwrap();
        drop(f);

        let mut recovered = DeltaWriter::open_with(&dir, LeaseConfig::force_takeover())
            .expect("recovery open after torn tail")
            .with_policy(CompactionPolicy::never());
        let (gen, merged) = read_merged(&dir);
        assert_eq!(gen, 0, "no durable frame ⇒ the batch rolls back entirely");
        assert_ne!(merged, post_edges);

        // The rolled-back batch, re-staged and published cleanly, lands
        // on the bit-identical generation the uncrashed run produced.
        stage(&mut recovered, &records);
        assert_eq!(recovered.publish().unwrap(), 1);
        let (_, republished) = read_merged(&dir);
        assert_eq!(republished, post_edges, "recovered publish must be deterministic");
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Two-writer race: the store admits exactly one live writer, and a
/// writer whose lease was taken over fails its next flip with a typed
/// fencing error instead of silently clobbering the new epoch's work.
#[test]
fn second_writer_is_rejected_and_stale_writer_is_fenced() {
    let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 9);
    let dir = store_dir("race");
    Convert::grid(2).write(&g, &dir).unwrap();

    let mut first = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
    assert_eq!(first.lease_epoch(), 1);

    // Satellite: a second writer on a live store is a typed error.
    let second = match DeltaWriter::open(&dir) {
        Ok(_) => panic!("second writer must be rejected while the lease is held"),
        Err(e) => e,
    };
    assert!(matches!(second, GraphError::LeaseHeld { .. }), "wrong error: {second}");

    // An operator forces a takeover (dead-process recovery path); the
    // usurper gets a bumped epoch.
    let mut usurper = DeltaWriter::open_with(&dir, LeaseConfig::force_takeover())
        .unwrap()
        .with_policy(CompactionPolicy::never());
    assert_eq!(usurper.lease_epoch(), 2);

    // The fenced original may still buffer, but can never flip CURRENT.
    first.insert(0, 1, 1.0).unwrap();
    let fenced = first.publish().expect_err("fenced writer must not publish");
    assert!(
        matches!(fenced, GraphError::EpochFenced { .. } | GraphError::LeaseLost { .. }),
        "wrong error: {fenced}"
    );

    // The epoch holder proceeds normally.
    usurper.insert(1, 2, 1.0).unwrap();
    assert_eq!(usurper.publish().unwrap(), 1);
    let (gen, _) = read_merged(&dir);
    assert_eq!(gen, 1);

    drop(first);
    // Dropping the fenced writer must not release the usurper's lease.
    let still_fenced = match DeltaWriter::open(&dir) {
        Ok(_) => panic!("usurper's lease must survive the fenced writer's drop"),
        Err(e) => e,
    };
    assert!(matches!(still_fenced, GraphError::LeaseHeld { .. }), "{still_fenced}");
    drop(usurper);
    std::fs::remove_dir_all(&dir).ok();
}

const NV: u32 = 400;
const THREADS: usize = 4;
const COMMITS: usize = 3;
/// Each ingest thread owns a disjoint source-vertex range, so batches
/// from different threads commute and any group-commit interleaving
/// yields the same final graph.
const SPAN: u32 = NV / THREADS as u32;

/// Thread `t`'s commit `c`: fresh inserts in its private src range, base
/// edges tombstoned, and (from the second commit on) one retraction of an
/// edge the thread itself inserted earlier.
fn thread_batch(g: &EdgeList, t: usize, c: usize) -> Vec<DeltaRecord> {
    let lo = t as u32 * SPAN;
    let mut ops = Vec::new();
    for k in 0..20u32 {
        let src = lo + (c as u32 * 20 + k) % SPAN;
        let dst = (src * 31 + k * 7 + 3) % NV;
        ops.push(DeltaRecord::insert(src, dst, (c + 1) as f32));
    }
    for e in g.edges.iter().filter(|e| e.src >= lo && e.src < lo + SPAN).step_by(97).take(2) {
        ops.push(DeltaRecord::delete(e.src, e.dst));
    }
    if c > 0 {
        let src = lo + ((c as u32 - 1) * 20) % SPAN;
        ops.push(DeltaRecord::delete(src, (src * 31 + 3) % NV));
    }
    ops
}

fn job_spec() -> JobSpec {
    JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters: 8 }
}

/// Concurrent daemon ingest: N client threads group-commit interleaved
/// insert/delete batches while PageRank jobs run. The final merged store
/// must equal a serial replay of the committed batches in generation
/// order, and every snapshot a concurrent reader took mid-stream must be
/// bit-identical to some published generation — never a torn mix.
#[test]
fn concurrent_daemon_ingest_matches_serial_reference() {
    let g = generators::rmat(NV, 3600, generators::RmatParams::GRAPH500, 63);
    let dir = store_dir("daemon");
    Convert::grid(4).write(&g, &dir).unwrap();

    let mut config = ServerConfig::new(&dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-ingest-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(5);
    config.enable_ingest = true;
    let server = Server::start(config).expect("ingest-enabled server starts");
    let socket = server.socket_path().unwrap().to_path_buf();

    // A concurrent reader snapshotting the store while commits land.
    let done = Arc::new(AtomicBool::new(false));
    let snapshot_thread = {
        let dir = dir.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut snaps: Vec<(u64, Vec<EdgeBits>)> = Vec::new();
            while !done.load(Ordering::Relaxed) {
                let (gen, edges) = read_merged(&dir);
                snaps.push((gen, sorted_multiset(&edges)));
                std::thread::sleep(Duration::from_millis(3));
            }
            snaps
        })
    };

    // N ingest threads, each its own connection, interleaved commits.
    let ingest_threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let socket = socket.clone();
            let g = g.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect_unix(&socket).expect("ingest client");
                let mut log: Vec<(u64, Vec<DeltaRecord>)> = Vec::new();
                for c in 0..COMMITS {
                    let batch = thread_batch(&g, t, c);
                    assert_eq!(client.ingest(&batch).unwrap(), batch.len());
                    let (generation, records) = client.ingest_commit().unwrap();
                    assert!(records >= batch.len() as u64, "commit absorbs at least its own batch");
                    log.push((generation, batch));
                }
                log
            })
        })
        .collect();

    // Jobs share the daemon with the ingest threads.
    let mut client = Client::connect_unix(&socket).expect("job client");
    let mid = client.run(&job_spec()).expect("job during ingest");
    assert_eq!(mid.values.len(), NV as usize);

    let logs: Vec<Vec<(u64, Vec<DeltaRecord>)>> =
        ingest_threads.into_iter().map(|h| h.join().expect("ingest thread")).collect();
    done.store(true, Ordering::Relaxed);
    let snapshots = snapshot_thread.join().expect("snapshot thread");

    // Each thread's generations are strictly increasing: later commits
    // land in strictly later generations.
    for (t, log) in logs.iter().enumerate() {
        for pair in log.windows(2) {
            assert!(pair[0].0 < pair[1].0, "thread {t}: generations not increasing");
        }
    }
    let max_gen = logs.iter().flat_map(|l| l.iter().map(|(g, _)| *g)).max().unwrap();

    // A post-ingest job forces a round, after which the daemon must have
    // rotated to the newest published generation.
    std::thread::sleep(Duration::from_millis(300));
    client.run(&job_spec()).expect("job after ingest");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, max_gen, "daemon rotated to the last commit");
    assert_eq!(stats.ingest_commits, (THREADS * COMMITS) as u64);
    assert!(stats.ingest_groups >= 1 && stats.ingest_groups <= stats.ingest_commits);
    let total_records: u64 = logs.iter().flat_map(|l| l.iter().map(|(_, b)| b.len() as u64)).sum();
    assert_eq!(stats.delta_wal_records, total_records);
    assert!(stats.delta_wal_syncs >= 1 && stats.delta_wal_syncs <= stats.delta_wal_batches);
    assert_eq!(stats.lease_held, 1);
    assert!(stats.lease_epoch >= 1);

    client.shutdown_server().expect("shutdown");
    server.join();

    // Serial reference: apply the batches generation by generation.
    // Within one generation (one commit group) the ticket order is not
    // observable, but the threads' disjoint src ranges make the batches
    // commute, so any fixed order reproduces the group's result.
    let mut by_gen: HashMap<u64, Vec<(usize, &Vec<DeltaRecord>)>> = HashMap::new();
    for (t, log) in logs.iter().enumerate() {
        for (gen, batch) in log {
            by_gen.entry(*gen).or_default().push((t, batch));
        }
    }
    let mut reference = g.clone();
    let mut state_at: HashMap<u64, Vec<EdgeBits>> = HashMap::new();
    state_at.insert(0, edge_list_multiset(&reference));
    for gen in 1..=max_gen {
        let mut group = by_gen.remove(&gen).unwrap_or_default();
        group.sort_by_key(|(t, _)| *t);
        assert!(!group.is_empty(), "generation {gen} published without a commit");
        for (_, batch) in group {
            apply_delta_to_edge_list(&mut reference, batch);
        }
        state_at.insert(gen, edge_list_multiset(&reference));
    }

    // Final merged store == serial reference.
    let (final_gen, final_edges) = read_merged(&dir);
    assert_eq!(final_gen, max_gen);
    assert_eq!(
        sorted_multiset(&final_edges),
        state_at[&max_gen],
        "final merged edges diverge from the serial replay"
    );

    // Every concurrent snapshot is bit-identical to the published state
    // of the generation it resolved — no torn reads across a flip.
    assert!(!snapshots.is_empty());
    for (i, (gen, edges)) in snapshots.iter().enumerate() {
        let expected = state_at
            .get(gen)
            .unwrap_or_else(|| panic!("snapshot {i} saw unpublished generation {gen}"));
        assert_eq!(edges, expected, "snapshot {i} at generation {gen} is torn");
    }

    std::fs::remove_dir_all(&dir).ok();
}
