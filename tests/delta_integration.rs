//! Evolving-graph integration: the disk-resident delta store must serve
//! mutated graphs **bit-identically** to an in-memory run over the same
//! mutated edge list, and the daemon must rotate to newly published
//! generations between rounds so that every job sees exactly one
//! consistent generation.

use graphm::core::{JobReport, Scheme};
use graphm::graph::delta::apply_delta_to_edge_list;
use graphm::graph::{generators, DeltaRecord, EdgeList, MemoryProfile};
use graphm::server::{Client, ExecutionMode, Server, ServerConfig};
use graphm::store::{CompactionPolicy, Convert, DeltaWriter, DiskGridSource};
use graphm::workloads::{immediate_arrivals, AlgoKind, JobSpec, Workbench};
use std::time::Duration;

fn store_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-delta-integration-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A deterministic mutation batch that genuinely changes results: real
/// edges deleted (every copy), fresh edges inserted.
fn mutate(writer: &mut DeltaWriter, graph: &EdgeList) -> Vec<DeltaRecord> {
    let mut records = Vec::new();
    for e in graph.edges.iter().step_by(211).take(10) {
        writer.delete(e.src, e.dst).unwrap();
        records.push(DeltaRecord::delete(e.src, e.dst));
    }
    let nv = graph.num_vertices;
    for i in 0..25u32 {
        let (src, dst, w) = ((i * 37) % nv, (i * 101 + 5) % nv, 1.0);
        writer.insert(src, dst, w).unwrap();
        records.push(DeltaRecord::insert(src, dst, w));
    }
    records
}

fn assert_job_reports_identical(mem: &[JobReport], disk: &[JobReport], ctx: &str) {
    assert_eq!(mem.len(), disk.len(), "{ctx}: job counts");
    for (a, b) in mem.iter().zip(disk) {
        assert_eq!(a.id, b.id, "{ctx}: {}", a.name);
        assert_eq!(a.name, b.name, "{ctx}");
        assert_eq!(a.iterations, b.iterations, "{ctx}: {}", a.name);
        assert_eq!(a.instructions, b.instructions, "{ctx}: {}", a.name);
        assert_eq!(a.edges_processed, b.edges_processed, "{ctx}: {}", a.name);
        assert_eq!(a.submit_ns.to_bits(), b.submit_ns.to_bits(), "{ctx}: {}", a.name);
        assert_eq!(a.finish_ns.to_bits(), b.finish_ns.to_bits(), "{ctx}: {}", a.name);
        assert_eq!(a.values.len(), b.values.len(), "{ctx}: {}", a.name);
        for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {} vertex {i}: {x} vs {y}", a.name);
        }
    }
}

/// The acceptance criterion: a disk store mutated through `DeltaWriter`
/// and re-opened at the published generation replays the paper mix
/// bit-identically to an in-memory workbench over the same mutated edge
/// list — and keeps doing so after compaction folds the chain away.
#[test]
fn evolving_disk_run_matches_in_memory_mutated_run() {
    let g = generators::rmat(600, 5200, generators::RmatParams::GRAPH500, 51);
    let dir = store_dir("bitident");
    Convert::grid(4).write(&g, &dir).unwrap();

    let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
    let records = mutate(&mut writer, &g);
    assert_eq!(writer.publish().unwrap(), 1);

    let mut mutated = g.clone();
    apply_delta_to_edge_list(&mut mutated, &records);
    assert_ne!(mutated.edges.len(), g.edges.len(), "mutations must change the graph");

    let wb_mem = Workbench::from_graph(mutated.clone(), 4, MemoryProfile::TEST);
    let wb_disk = Workbench::from_disk(&dir, MemoryProfile::TEST).unwrap();
    let specs = wb_mem.paper_mix(6, 19);
    assert!(specs.iter().any(|s| s.kind == AlgoKind::PageRank));
    let arrivals = immediate_arrivals(specs.len());

    for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
        let mem = wb_mem.run(scheme, &specs, &arrivals);
        let disk = wb_disk.run(scheme, &specs, &arrivals);
        assert_job_reports_identical(&mem.jobs, &disk.jobs, &format!("{scheme:?} gen 1"));
    }

    // Compaction rewrites the base, drops the chain, and must not change
    // a single bit of any report. Drop the live workbench first so the
    // share registry cannot hand back its still-generation-1 handle —
    // the post-compaction run must read the folded gen-2 base segments.
    drop(wb_disk);
    assert_eq!(writer.compact().unwrap(), 2);
    assert_eq!(writer.delta_bytes(), 0);
    let wb_compacted = Workbench::from_disk(&dir, MemoryProfile::TEST).unwrap();
    let compacted = DiskGridSource::open_shared(&dir).unwrap();
    assert_eq!(compacted.generation(), 2, "fresh handle resolves the compacted generation");
    assert_eq!(compacted.delta_stats().delta_bytes, 0);
    drop(compacted);
    let mem = wb_mem.run(Scheme::Shared, &specs, &arrivals);
    let disk = wb_compacted.run(Scheme::Shared, &specs, &arrivals);
    assert_job_reports_identical(&mem.jobs, &disk.jobs, "Shared post-compaction");

    std::fs::remove_dir_all(&dir).ok();
}

/// Lets the daemon's runtime thread close the current round. Rotation
/// happens only *between* rounds, and a round stays open as long as
/// drains keep finding work — a submission racing the round's final
/// (empty) drain legitimately joins the old round and serves the old
/// generation. Tests that assert on rotation counters must not race
/// that window.
fn settle() {
    std::thread::sleep(Duration::from_millis(300));
}

fn rotation_spec() -> JobSpec {
    JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters: 12 }
}

/// Reference values for `rotation_spec` over a given edge list, via the
/// deterministic in-memory Shared runtime.
fn reference_values(graph: &EdgeList) -> Vec<f64> {
    let wb = Workbench::from_graph(graph.clone(), 4, MemoryProfile::TEST);
    let report = wb.run(Scheme::Shared, &[rotation_spec()], &immediate_arrivals(1));
    report.jobs.into_iter().next().unwrap().values
}

fn assert_values_bits(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: lengths");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: vertex {i}: {x} vs {y}");
    }
}

/// Jobs submitted across a generation rotation each see exactly one
/// consistent generation: the pre-publish job answers from the base
/// graph, the post-publish job from the mutated graph, and the daemon's
/// stats report the rotation and the later compaction.
fn daemon_rotation_scenario(mode: ExecutionMode) {
    let g = generators::rmat(500, 4200, generators::RmatParams::GRAPH500, 77);
    let dir = store_dir(&format!("daemon-{}", mode.name()));
    Convert::grid(4).write(&g, &dir).unwrap();

    let mut config = ServerConfig::new(&dir);
    config.socket_path = Some(std::env::temp_dir().join(format!(
        "graphm-delta-{}-{}.sock",
        mode.name(),
        std::process::id()
    )));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(5);
    config.mode = mode;
    let server = Server::start(config).expect("server starts");
    let socket = server.socket_path().unwrap().to_path_buf();
    let mut client = Client::connect_unix(&socket).expect("connect");

    // Round 1: generation 0.
    let r1 = client.run(&rotation_spec()).expect("job 1");
    assert_values_bits(&r1.values, &reference_values(&g), "generation 0");
    let stats_gen0 = client.stats().expect("stats gen 0");
    settle();

    // Publish generation 1 while the daemon idles.
    let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
    let records = mutate(&mut writer, &g);
    assert_eq!(writer.publish().unwrap(), 1);
    let mut mutated = g.clone();
    apply_delta_to_edge_list(&mut mutated, &records);
    let mutated_reference = reference_values(&mutated);

    // Round 2: the daemon must have rotated between rounds; the job runs
    // entirely against generation 1 (fresh out-degrees included).
    let r2 = client.run(&rotation_spec()).expect("job 2");
    assert_values_bits(&r2.values, &mutated_reference, "generation 1");
    assert_ne!(
        r1.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        r2.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "the mutation must change PageRank"
    );
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, 1, "daemon serves the published generation");
    assert_eq!(stats.generation_rotations, 1);
    assert_eq!(stats.delta_records, records.len() as u64);
    assert_eq!(stats.compactions, 0);

    // Compaction publishes generation 2; results stay identical.
    settle();
    assert_eq!(writer.compact().unwrap(), 2);
    let r3 = client.run(&rotation_spec()).expect("job 3");
    assert_values_bits(&r3.values, &mutated_reference, "generation 2 (compacted)");
    let stats = client.stats().expect("stats after compaction");
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.generation_rotations, 2);
    assert_eq!(stats.delta_bytes, 0, "compaction folded the chain");
    assert_eq!(stats.compactions, 1);
    assert_eq!(stats.jobs_completed, 3);
    // Daemon-wide counters stay cumulative across rotation rebuilds —
    // they must never move backwards.
    assert!(
        stats.partition_loads > stats_gen0.partition_loads,
        "partition_loads is cumulative ({} -> {})",
        stats_gen0.partition_loads,
        stats.partition_loads
    );
    assert!(stats.virtual_ns >= stats_gen0.virtual_ns, "virtual_ns is monotone");

    client.shutdown_server().expect("shutdown");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_rotates_between_rounds_deterministic() {
    daemon_rotation_scenario(ExecutionMode::Deterministic);
}

#[test]
fn daemon_rotates_between_rounds_wallclock() {
    daemon_rotation_scenario(ExecutionMode::Wallclock);
}

/// A generation published *before the daemon's first job round* is
/// served by that first round. Regression test: the idle service's
/// construction-time generation pin used to make the round-start
/// refresh stage (not adopt) the rotation, so the first round silently
/// served the startup generation while `stats.generation` flipped to
/// the new one mid-round.
#[test]
fn daemon_first_round_serves_pre_round_publish() {
    let g = generators::rmat(400, 3200, generators::RmatParams::GRAPH500, 83);
    let dir = store_dir("firstround");
    Convert::grid(3).write(&g, &dir).unwrap();

    let mut config = ServerConfig::new(&dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-firstround-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(5);
    let server = Server::start(config).expect("server starts");
    let mut client = Client::connect_unix(server.socket_path().unwrap()).expect("connect");

    // Publish while the daemon idles — no job has ever run.
    let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
    let records = mutate(&mut writer, &g);
    assert_eq!(writer.publish().unwrap(), 1);
    let mut mutated = g.clone();
    apply_delta_to_edge_list(&mut mutated, &records);

    // The very first job must already run on generation 1.
    let r1 = client.run(&rotation_spec()).expect("job 1");
    assert_values_bits(&r1.values, &reference_values(&mutated), "first round, generation 1");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, 1, "first round adopted the pre-round publish");
    assert_eq!(stats.generation_rotations, 1);

    client.shutdown_server().expect("shutdown");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// `--no-rotate` pins the daemon to its open-time generation even when
/// newer generations exist on disk.
#[test]
fn daemon_no_rotate_pins_open_time_generation() {
    let g = generators::rmat(300, 2400, generators::RmatParams::GRAPH500, 91);
    let dir = store_dir("norotate");
    Convert::grid(3).write(&g, &dir).unwrap();

    let mut config = ServerConfig::new(&dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-norotate-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(5);
    config.auto_rotate = false;
    let server = Server::start(config).expect("server starts");
    let mut client = Client::connect_unix(server.socket_path().unwrap()).expect("connect");

    let r1 = client.run(&rotation_spec()).expect("job 1");
    settle();
    let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
    mutate(&mut writer, &g);
    writer.publish().unwrap();

    let r2 = client.run(&rotation_spec()).expect("job 2");
    assert_values_bits(&r2.values, &r1.values, "pinned daemon ignores the publish");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, 0);
    assert_eq!(stats.generation_rotations, 0);

    client.shutdown_server().expect("shutdown");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}
