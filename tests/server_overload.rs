//! Overload-safe serving: admission control, per-tenant quotas, priority
//! round-size policy, connection hygiene, the `health` verb, and graceful
//! shutdown that releases the ingest writer lease.
//!
//! The contract under test: a daemon past its configured limits answers
//! with *typed* errors (`overloaded`, `shutting_down`, `line_too_long`)
//! instead of hanging, crashing, or queueing without bound — and sheds
//! work without leaking queue slots, so admission recovers as soon as the
//! backlog drains.

use graphm::graph::delta::DeltaRecord;
use graphm::graph::{generators, MemoryProfile};
use graphm::server::{Client, ClientError, JobState, Priority, Server, ServerConfig};
use graphm::store::{Convert, DeltaWriter};
use graphm::workloads::{AlgoKind, JobSpec};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

fn store_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-server-overload-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn base_config(dir: &std::path::Path, name: &str, batch_ms: u64) -> ServerConfig {
    let mut config = ServerConfig::new(dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-ovl-{name}-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(batch_ms);
    config
}

fn small_store(name: &str) -> std::path::PathBuf {
    let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 9);
    let dir = store_dir(name);
    Convert::grid(2).write(&g, &dir).unwrap();
    dir
}

fn wcc(max_iters: usize) -> JobSpec {
    JobSpec { kind: AlgoKind::Wcc, damping: 0.85, root: 0, max_iters }
}

/// Queue-full submissions get a typed `overloaded` rejection immediately
/// (not a hang), the shed does not leak a queue slot, and admission
/// recovers once the backlog drains.
#[test]
fn queue_full_submissions_get_typed_overloaded_error() {
    let dir = small_store("queuefull");
    // A 1-second batching window keeps the first submission *queued*
    // while the second arrives microseconds later.
    let mut config = base_config(&dir, "queuefull", 1000);
    config.max_pending = 1;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let id = client.submit(&wcc(3)).unwrap();
    match client.submit(&wcc(3)) {
        Err(ClientError::Overloaded(msg)) => {
            assert!(msg.contains("queue full"), "shed message names the cause: {msg}")
        }
        other => panic!("expected a typed overloaded error, got {other:?}"),
    }

    // The shed job never got an id; the admitted one still runs.
    let report = client.wait(id).unwrap();
    assert!(report.error.is_none());

    // Backlog drained: admission recovers and the daemon serves again.
    let id2 = client.submit(&wcc(3)).unwrap();
    assert!(client.wait(id2).unwrap().error.is_none());

    let stats = server.stats();
    assert_eq!(stats.jobs_shed, 1, "exactly one submission was shed");
    assert_eq!(stats.jobs_submitted, 2, "shed submissions are not counted as admitted");
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_failed, 0);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-tenant pending quotas isolate tenants: one tenant exhausting its
/// queued quota is shed while another tenant's submissions are still
/// admitted, and the quota frees once the backlog drains into a round.
#[test]
fn tenant_pending_quota_sheds_one_tenant_without_starving_another() {
    let dir = small_store("tenants");
    let mut config = base_config(&dir, "tenants", 1000);
    config.tenant_max_pending = 1;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let a1 = client.submit_as(&wcc(3), "alice", Priority::Batch).unwrap();
    match client.submit_as(&wcc(3), "alice", Priority::Batch) {
        Err(ClientError::Overloaded(msg)) => {
            assert!(msg.contains("alice"), "shed message names the tenant: {msg}")
        }
        other => panic!("alice's second submission should be shed, got {other:?}"),
    }
    // Bob's quota is untouched by alice's backlog.
    let b1 = client.submit_as(&wcc(3), "bob", Priority::Batch).unwrap();

    assert!(client.wait(a1).unwrap().error.is_none());
    assert!(client.wait(b1).unwrap().error.is_none());

    // The queued count drained with the round: alice is admitted again —
    // a leaked slot would shed her forever.
    let a2 = client.submit_as(&wcc(3), "alice", Priority::Batch).unwrap();
    assert!(client.wait(a2).unwrap().error.is_none());

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The inflight quota caps queued + running jobs per tenant, and its
/// bookkeeping is released when reports publish (no slow leak that would
/// eventually shed a well-behaved tenant).
#[test]
fn tenant_inflight_quota_caps_concurrency_and_releases_on_finish() {
    let dir = small_store("inflight");
    let mut config = base_config(&dir, "inflight", 1000);
    config.tenant_max_inflight = 2;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let a1 = client.submit_as(&wcc(3), "alice", Priority::Batch).unwrap();
    let a2 = client.submit_as(&wcc(3), "alice", Priority::Interactive).unwrap();
    match client.submit_as(&wcc(3), "alice", Priority::Batch) {
        Err(ClientError::Overloaded(msg)) => {
            assert!(msg.contains("in flight"), "shed message names the cause: {msg}")
        }
        other => panic!("alice's third concurrent job should be shed, got {other:?}"),
    }
    // Other tenants are unaffected by alice's saturation.
    let b1 = client.submit_as(&wcc(3), "bob", Priority::Batch).unwrap();

    for id in [a1, a2, b1] {
        assert!(client.wait(id).unwrap().error.is_none());
    }
    // Inflight counts were released with the reports (the daemon
    // decrements before publishing, so this cannot race the waits).
    let a3 = client.submit_as(&wcc(3), "alice", Priority::Batch).unwrap();
    let a4 = client.submit_as(&wcc(3), "alice", Priority::Batch).unwrap();
    assert!(client.wait(a3).unwrap().error.is_none());
    assert!(client.wait(a4).unwrap().error.is_none());
    assert_eq!(server.stats().jobs_shed, 1);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Round-size policy: with `max_batch_per_round = 1`, a backlog of batch
/// jobs is spread over later rounds while an interactive job joins the
/// first round — the latency-sensitive tenant is not stuck behind the
/// batch queue.
#[test]
fn interactive_jobs_are_not_stuck_behind_batch_backlog() {
    let dir = small_store("priority");
    let mut config = base_config(&dir, "priority", 400);
    config.max_batch_per_round = 1;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    // Three batch jobs queue up first, then the interactive one.
    let batch_ids: Vec<_> =
        (0..3).map(|_| client.submit_as(&wcc(4), "batchy", Priority::Batch).unwrap()).collect();
    let interactive = client.submit_as(&wcc(4), "dash", Priority::Interactive).unwrap();

    // The interactive job finishes in the *first* round (alongside one
    // admitted batch job); the rest of the batch backlog is still
    // waiting for later rounds — each gated behind its own batching
    // window — when the interactive report comes back.
    let report = client.wait(interactive).unwrap();
    assert!(report.error.is_none());
    let last_batch_state = client.status(batch_ids[2]).unwrap();
    assert!(
        !matches!(last_batch_state, JobState::Done),
        "the deferred batch backlog must not have finished before the interactive job"
    );

    for id in batch_ids {
        assert!(client.wait(id).unwrap().error.is_none());
    }
    assert!(server.stats().rounds >= 3, "the batch cap forces the backlog across rounds");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Graceful shutdown: in-flight jobs drain and answer their waiters, new
/// submissions get a typed `shutting_down` error, and the ingest writer
/// lease is released so an external writer can take over — even while
/// the `Server` handle (and its shared state) is still alive.
#[test]
fn graceful_shutdown_drains_rejects_and_releases_lease() {
    let dir = small_store("shutdown");
    let mut config = base_config(&dir, "shutdown", 500);
    config.enable_ingest = true;
    let server = Server::start(config).unwrap();
    let socket = server.socket_path().unwrap().to_path_buf();

    let mut submitter = Client::connect_unix(&socket).unwrap();
    // Ingest works and health reflects the held lease before shutdown.
    let mut other = Client::connect_unix(&socket).unwrap();
    other.ingest(&[DeltaRecord::insert(1, 2, 1.0)]).unwrap();
    other.ingest_commit().unwrap();
    let health = other.health().unwrap();
    assert!(health.lease_held, "ingest-enabled daemon holds the writer lease");
    assert!(!health.shutting_down);

    // A job queued inside the open batching window...
    let id = submitter.submit(&wcc(3)).unwrap();
    // ...survives the shutdown request (the shutdown connection closes
    // after its ack, per protocol).
    other.shutdown_server().unwrap();

    // New work is rejected with the typed shutdown error.
    match submitter.submit(&wcc(3)) {
        Err(ClientError::ShuttingDown(_)) => {}
        other => panic!("expected a typed shutting_down error, got {other:?}"),
    }
    // The queued job still drains and answers its waiter.
    let report = submitter.wait(id).unwrap();
    assert!(report.error.is_none());

    // The runtime released the writer lease on exit: a fresh writer can
    // open the store while the Server handle is still alive. (Without
    // the release this would fail with LeaseHeld until process exit.)
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let writer = loop {
        match DeltaWriter::open(&dir) {
            Ok(w) => break w,
            Err(e) if std::time::Instant::now() < deadline => {
                // The runtime thread publishes its exit just after the
                // final report; give it a moment.
                std::thread::sleep(Duration::from_millis(20));
                let _ = e;
            }
            Err(e) => panic!("writer lease was not released by graceful shutdown: {e}"),
        }
    };
    drop(writer);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The `health` verb: cheap, lock-light readiness probe carrying lease
/// state, served generation, queue depth, and uptime.
#[test]
fn health_verb_reports_daemon_state() {
    let dir = small_store("health");
    let server = Server::start(base_config(&dir, "health", 5)).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let h1 = client.health().unwrap();
    assert!(!h1.lease_held, "plain reader daemon holds no writer lease");
    assert_eq!(h1.lease_epoch, 0);
    assert_eq!(h1.queue_depth, 0);
    assert_eq!(h1.running, 0);
    assert!(!h1.shutting_down);

    // Uptime moves; a job leaves queue depth back at zero once done.
    let id = client.submit(&wcc(3)).unwrap();
    client.wait(id).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let h2 = client.health().unwrap();
    assert!(h2.uptime_ms >= h1.uptime_ms);
    assert_eq!(h2.queue_depth, 0);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Connection limit: accepts past the cap get one typed `overloaded`
/// error line and are closed; existing connections keep working, and
/// slots free when a connection ends.
#[test]
fn connection_limit_sheds_accepts_with_typed_error() {
    let dir = small_store("connlimit");
    let mut config = base_config(&dir, "connlimit", 5);
    config.max_connections = 1;
    let server = Server::start(config).unwrap();
    let socket = server.socket_path().unwrap().to_path_buf();

    let mut first = Client::connect_unix(&socket).unwrap();
    first.ping().unwrap();

    // The daemon writes the shed line before the second client sends
    // anything; depending on timing the client sees it as a typed
    // overloaded response or a transport error on the closed socket.
    let mut second = Client::connect_unix(&socket).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    match second.ping() {
        Err(ClientError::Overloaded(_)) | Err(ClientError::Io(_)) => {}
        other => panic!("second connection should be shed, got {other:?}"),
    }
    drop(second);

    // The surviving connection is unaffected, and the daemon counted
    // the rejection.
    first.ping().unwrap();
    assert!(server.stats().connections_rejected >= 1);

    // Dropping the first connection frees its slot (poll: the handler
    // thread decrements as it exits).
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut fresh = Client::connect_unix(&socket).unwrap();
        match fresh.ping() {
            Ok(()) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20))
            }
            Err(e) => panic!("slot never freed after disconnect: {e}"),
        }
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Oversized request lines are rejected with a typed `line_too_long`
/// error and the connection stays usable — framing recovers at the
/// newline, nothing unbounded is buffered.
#[test]
fn oversized_line_gets_typed_error_and_connection_survives() {
    let dir = small_store("oversize");
    let mut config = base_config(&dir, "oversize", 5);
    config.max_line_bytes = 256;
    let server = Server::start(config).unwrap();
    let socket = server.socket_path().unwrap().to_path_buf();

    let mut stream = UnixStream::connect(&socket).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Far past the cap, in several writes (exercises the discard path).
    let big = vec![b'x'; 4096];
    stream.write_all(&big).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":false"), "oversized line answered: {line}");
    assert!(line.contains("line_too_long"), "typed code present: {line}");

    // Same connection, valid request: framing recovered.
    stream.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\":true"), "connection survives an oversized line: {line}");

    assert!(server.stats().oversized_lines >= 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-read socket timeouts close half-dead connections instead of
/// letting them pin handler threads (and connection slots) forever.
#[test]
fn read_timeout_closes_idle_connections() {
    let dir = small_store("timeout");
    let mut config = base_config(&dir, "timeout", 5);
    config.read_timeout = Duration::from_millis(150);
    let server = Server::start(config).unwrap();
    let socket = server.socket_path().unwrap().to_path_buf();

    // An active client inside the timeout keeps working.
    let mut stream = UnixStream::connect(&socket).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("pong"));

    // Then it goes silent: the daemon closes the connection (EOF on our
    // side) once the read timeout expires.
    std::thread::sleep(Duration::from_millis(600));
    line.clear();
    let n = reader.read_line(&mut line).unwrap_or(0);
    assert_eq!(n, 0, "daemon should close an idle connection, got {line:?}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that disconnects mid-request (truncated frame, no newline)
/// must not leak a queue slot or wedge the daemon.
#[test]
fn mid_request_disconnect_leaks_nothing() {
    let dir = small_store("disconnect");
    let server = Server::start(base_config(&dir, "disconnect", 5)).unwrap();
    let socket = server.socket_path().unwrap().to_path_buf();

    for _ in 0..4 {
        let mut stream = UnixStream::connect(&socket).unwrap();
        // Half a submit request, never terminated.
        stream.write_all(b"{\"cmd\":\"submit\",\"algo\":\"pagerank\"").unwrap();
        drop(stream);
    }
    // An unterminated-but-complete line at EOF still parses (and errors
    // normally); a pure fragment is dropped silently.
    let mut stream = UnixStream::connect(&socket).unwrap();
    stream.write_all(b"{\"cmd\":").unwrap();
    drop(stream);

    let mut client = Client::connect_unix(&socket).unwrap();
    client.ping().unwrap();
    let stats = server.stats();
    assert_eq!(stats.jobs_submitted, 0, "no truncated frame became a queued job");
    assert_eq!(stats.queue_depth, 0);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
