//! Cross-crate integration tests: full S/C/M runs through the facade,
//! asserting (a) correctness against sequential oracles for every scheme
//! and engine, and (b) the paper's qualitative orderings.

use graphm::algos::reference;
use graphm::prelude::*;

fn close(a: f64, b: f64) -> bool {
    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9
}

/// Every scheme computes exactly what the textbook oracle computes, for
/// every algorithm in the paper's mix.
#[test]
fn all_schemes_match_oracles_on_paper_mix() {
    let wb = Workbench::dataset(DatasetId::Orkut, 64, 3);
    let specs = wb.paper_mix(4, 11);
    let (s, c, m) = wb.run_all_schemes(&specs);
    for report in [&s, &c, &m] {
        for (job, spec) in report.jobs.iter().zip(&specs) {
            let oracle: Vec<f64> = match spec.kind {
                AlgoKind::PageRank => {
                    // PageRank may converge early; replay the oracle for
                    // exactly the iterations the job ran.
                    reference::pagerank_ref(wb.graph(), spec.damping, job.iterations, 0.0)
                }
                AlgoKind::Bfs => {
                    reference::bfs_ref(wb.graph(), spec.root).iter().map(|&l| l as f64).collect()
                }
                AlgoKind::Sssp => {
                    reference::sssp_ref(wb.graph(), spec.root).iter().map(|&d| d as f64).collect()
                }
                AlgoKind::Wcc => continue, // capped WCC has no closed oracle
                _ => continue,
            };
            for (a, b) in job.values.iter().zip(&oracle) {
                assert!(
                    close(*a, *b),
                    "{:?} {} under {:?}: {a} vs {b}",
                    spec.kind,
                    job.id,
                    report.scheme
                );
            }
        }
    }
    // WCC results must at least agree across schemes (same truncation).
    for (js, jm) in s.jobs.iter().zip(&m.jobs) {
        if js.name == "WCC" {
            assert_eq!(js.values, jm.values, "WCC must be scheme-independent");
        }
    }
    let _ = c;
}

/// The paper's headline orderings hold on an out-of-core dataset.
#[test]
fn paper_orderings_out_of_core() {
    let wb = Workbench::dataset(DatasetId::UkUnion, 64, 4);
    assert!(wb.out_of_core(), "ukunion-sim must exceed the scaled memory");
    let specs = wb.paper_mix(8, 3);
    let (s, c, m) = wb.run_all_schemes(&specs);
    // Throughput: M beats both S and C.
    assert!(m.makespan_ns < s.makespan_ns, "M {} vs S {}", m.makespan_ns, s.makespan_ns);
    assert!(m.makespan_ns < c.makespan_ns, "M {} vs C {}", m.makespan_ns, c.makespan_ns);
    // I/O: one shared sweep reads less than uncoordinated streams.
    assert!(
        m.metrics.get(keys::DISK_READ_BYTES) < c.metrics.get(keys::DISK_READ_BYTES),
        "M must read less than C out-of-core"
    );
    // LLC: regularized streaming misses less.
    let rate = |r: &RunReport| r.metrics.get(keys::LLC_MISSES) / r.metrics.get(keys::LLC_ACCESSES);
    assert!(rate(&m) < rate(&c));
    assert!(rate(&m) < rate(&s));
    // Memory: M sits at or below C (one graph copy + per-job state).
    assert!(
        m.metrics.get(keys::PEAK_MEMORY_BYTES) <= c.metrics.get(keys::PEAK_MEMORY_BYTES) * 1.01
    );
}

/// The §4 scheduling strategy never hurts and the §5.6 synchronization
/// share stays within the paper's measured band (a few % to ~15%).
#[test]
fn scheduling_and_sync_overheads() {
    let wb = Workbench::dataset(DatasetId::LiveJ, 32, 4);
    let specs = wb.paper_mix(8, 5);
    let arr = graphm::workloads::immediate_arrivals(specs.len());
    let with = wb.run_with(Scheme::Shared, &specs, &arr, &wb.runner_config());
    let without = wb.run_with(Scheme::Shared, &specs, &arr, &wb.runner_config_without_scheduling());
    assert!(
        with.makespan_ns <= without.makespan_ns * 1.05,
        "priority order must not make things worse: {} vs {}",
        with.makespan_ns,
        without.makespan_ns
    );
    let sync_share = with.metrics.get(keys::SYNC_NS)
        / (with.metrics.get(keys::COMPUTE_NS) + with.metrics.get(keys::DATA_ACCESS_NS));
    assert!(sync_share > 0.0 && sync_share < 0.25, "sync share {sync_share}");
}

/// Chunk labelling bookkeeping stays within the paper's space-overhead
/// band (5.5%–19.2% of the structure data) on every registry dataset.
#[test]
fn chunk_table_overhead_in_paper_band() {
    use graphm::core::{GraphM, GraphMConfig};
    use graphm::gridgraph::GridSource;
    for id in DatasetId::ALL {
        let wb = Workbench::dataset(id, 64, 4);
        let source = GridSource::new(wb.engine().grid());
        let gm = GraphM::init(&source, 8, GraphMConfig::new(wb.profile));
        let ratio = gm.overhead_ratio(wb.structure_bytes);
        assert!(
            ratio > 0.01 && ratio < 0.40,
            "{}: overhead ratio {ratio} outside plausible band",
            id.name()
        );
    }
}

/// Late submissions join mid-flight and still converge correctly.
#[test]
fn staggered_arrivals_converge() {
    let wb = Workbench::dataset(DatasetId::LiveJ, 64, 3);
    let specs = wb.paper_mix(6, 9);
    let arr = graphm::workloads::poisson_arrivals(6, 16.0, 1e6, 4);
    let r = wb.run(Scheme::Shared, &specs, &arr);
    assert_eq!(r.jobs.len(), 6);
    for (job, &t) in r.jobs.iter().zip(&arr) {
        assert!(job.finish_ns >= t);
        assert!(job.iterations > 0);
    }
}
