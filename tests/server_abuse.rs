//! Property-based protocol abuse against a live daemon: arbitrary byte
//! garbage, embedded newlines, oversized lines, invalid UTF-8, and
//! mid-request disconnects must never wedge a connection or kill the
//! daemon. Every abusive frame gets *some* one-line answer (typed error
//! or parse error), framing recovers at the next newline, and a
//! well-formed `ping` on the same socket always comes back.

use graphm::graph::{generators, MemoryProfile};
use graphm::server::{Server, ServerConfig};
use graphm::store::Convert;
use proptest::collection;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// One daemon shared by all cases (leaked for the process lifetime):
/// surviving 64 consecutive abuse cases on the same instance is the
/// property under test.
fn abuse_socket() -> &'static PathBuf {
    static SOCKET: OnceLock<PathBuf> = OnceLock::new();
    SOCKET.get_or_init(|| {
        let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 7);
        let dir =
            std::env::temp_dir().join(format!("graphm-server-abuse-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Convert::grid(2).write(&g, &dir).unwrap();
        let mut config = ServerConfig::new(&dir);
        config.socket_path =
            Some(std::env::temp_dir().join(format!("graphm-abuse-{}.sock", std::process::id())));
        config.profile = MemoryProfile::TEST;
        config.batch_window = Duration::from_millis(5);
        // Small line cap so random payloads regularly exercise the
        // oversized-line shed path too.
        config.max_line_bytes = 512;
        let server = Server::start(config).unwrap();
        let socket = server.socket_path().unwrap().to_path_buf();
        std::mem::forget(server);
        socket
    })
}

fn connect() -> (UnixStream, BufReader<UnixStream>) {
    let stream = UnixStream::connect(abuse_socket()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

proptest! {
    #[test]
    fn daemon_survives_arbitrary_garbage_frames(
        bytes in collection::vec(0u8..255, 0..1024),
        disconnect in any::<bool>(),
    ) {
        let (mut stream, mut reader) = connect();
        if disconnect {
            // A truncated frame: raw bytes, no terminator, peer gone.
            // The daemon must simply drop the fragment.
            stream.write_all(&bytes).unwrap();
            drop(stream);
            drop(reader);
            // Liveness probe on a fresh connection.
            let (mut probe, mut probe_reader) = connect();
            probe.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
            let mut line = String::new();
            probe_reader.read_line(&mut line).unwrap();
            prop_assert!(line.contains("\"pong\":true"), "daemon wedged after disconnect: {line:?}");
        } else {
            // Garbage frame(s) — embedded b'\n' splits it into several,
            // each of which must be answered or (if a trailing fragment)
            // absorbed — then a valid ping on the SAME connection.
            stream.write_all(&bytes).unwrap();
            stream.write_all(b"\n{\"cmd\":\"ping\"}\n").unwrap();
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line).unwrap();
                prop_assert!(n > 0, "daemon closed the connection on garbage instead of answering");
                if line.contains("\"pong\":true") {
                    break;
                }
                // Every non-pong answer is a well-formed error line,
                // not echoed garbage.
                prop_assert!(
                    line.contains("\"ok\":false"),
                    "expected a typed error line, got {line:?}"
                );
            }
        }
    }
}
