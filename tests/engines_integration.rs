//! Integration across host engines: the same jobs on GridGraph, GraphChi,
//! and both distributed engines produce identical fixpoints, and GraphM's
//! scheme orderings hold on each.

use graphm::algos::{reference, Bfs, PageRank};
use graphm::core::GraphJob;
use graphm::distributed::{run_chaos, run_powergraph, ClusterConfig};
use graphm::graphchi::{run_graphchi, GraphChiEngine};
use graphm::gridgraph::{run_gridgraph, GridGraphEngine};
use graphm::prelude::*;
use std::sync::Arc;

fn graph() -> EdgeList {
    graphm::graph::generators::rmat(400, 3600, graphm::graph::generators::RmatParams::GRAPH500, 123)
}

#[test]
fn same_fixpoint_on_every_engine() {
    let g = graph();
    let oracle = reference::bfs_ref(&g, 7);

    // GridGraph.
    let (grid, _) = GridGraphEngine::convert(&g, 4);
    let mut bfs = Bfs::new(g.num_vertices, 7);
    grid.run_job(&mut bfs, 1000);
    assert_eq!(bfs.levels(), oracle.as_slice(), "gridgraph");

    // GraphChi.
    let (chi, _) = GraphChiEngine::convert(&g, 5);
    let mut bfs = Bfs::new(g.num_vertices, 7);
    chi.run_job(&mut bfs, 1000);
    assert_eq!(bfs.levels(), oracle.as_slice(), "graphchi");

    // PowerGraph (simulated cluster).
    let jobs: Vec<Box<dyn GraphJob>> = vec![Box::new(Bfs::new(g.num_vertices, 7))];
    let r = run_powergraph(Scheme::Shared, jobs, &g, ClusterConfig::new(4), 1, 1000);
    let got: Vec<u32> = r.results[0].iter().map(|&v| v as u32).collect();
    assert_eq!(got, oracle, "powergraph");

    // Chaos (simulated cluster).
    let jobs: Vec<Box<dyn GraphJob>> = vec![Box::new(Bfs::new(g.num_vertices, 7))];
    let r = run_chaos(Scheme::Shared, jobs, &g, ClusterConfig::new(4), 1, 1000);
    let got: Vec<u32> = r.results[0].iter().map(|&v| v as u32).collect();
    assert_eq!(got, oracle, "chaos");
}

#[test]
fn graphm_helps_every_single_machine_engine() {
    let g = graphm::graph::generators::rmat(
        2_000,
        40_000,
        graphm::graph::generators::RmatParams::GRAPH500,
        77,
    );
    let deg = Arc::new(g.out_degrees());
    let mk = |n: usize| -> Vec<Submission> {
        (0..n)
            .map(|i| {
                Submission::immediate(Box::new(PageRank::new(
                    g.num_vertices,
                    Arc::clone(&deg),
                    0.4 + 0.1 * i as f64,
                    15,
                )))
            })
            .collect()
    };
    let cfg = RunnerConfig::new(MemoryProfile::TEST);

    let (grid, _) = GridGraphEngine::convert(&g, 4);
    let gm = run_gridgraph(Scheme::Shared, mk(4), &grid, &cfg);
    let gc = run_gridgraph(Scheme::Concurrent, mk(4), &grid, &cfg);
    assert!(
        gm.makespan_ns < gc.makespan_ns,
        "gridgraph: M {} C {}",
        gm.makespan_ns,
        gc.makespan_ns
    );

    let (chi, _) = GraphChiEngine::convert(&g, 4);
    let cm = run_graphchi(Scheme::Shared, mk(4), &chi, &cfg);
    let cc = run_graphchi(Scheme::Concurrent, mk(4), &chi, &cfg);
    assert!(cm.makespan_ns < cc.makespan_ns, "graphchi: M {} C {}", cm.makespan_ns, cc.makespan_ns);
}

#[test]
fn distributed_m_beats_c_and_chaos_c_trails_s() {
    let g = graph();
    let deg = Arc::new(g.out_degrees());
    let mk = || -> Vec<Box<dyn GraphJob>> {
        (0..8)
            .map(|i| {
                Box::new(PageRank::new(g.num_vertices, Arc::clone(&deg), 0.4 + 0.05 * i as f64, 5))
                    as Box<dyn GraphJob>
            })
            .collect()
    };
    let cluster = ClusterConfig::new(8);
    let total = |r: &graphm::distributed::DistReport| r.metrics.get(keys::TOTAL_NS);

    let pg_c = total(&run_powergraph(Scheme::Concurrent, mk(), &g, cluster, 2, 100));
    let pg_m = total(&run_powergraph(Scheme::Shared, mk(), &g, cluster, 2, 100));
    assert!(pg_m < pg_c, "powergraph M {pg_m} vs C {pg_c}");

    let ch_s = total(&run_chaos(Scheme::Sequential, mk(), &g, cluster, 2, 100));
    let ch_c = total(&run_chaos(Scheme::Concurrent, mk(), &g, cluster, 2, 100));
    let ch_m = total(&run_chaos(Scheme::Shared, mk(), &g, cluster, 2, 100));
    assert!(ch_c > ch_s, "Table 4's anomaly: Chaos-C slower than Chaos-S");
    assert!(ch_m < ch_s, "chaos M {ch_m} vs S {ch_s}");
}

/// The threaded wall-clock runtime agrees with the deterministic one on
/// results while sharing loads.
#[test]
fn wall_and_deterministic_agree() {
    let g = graph();
    let (engine, _) = GridGraphEngine::convert(&g, 3);
    let mk = || -> Vec<Box<dyn GraphJob>> {
        vec![
            Box::new(PageRank::new(g.num_vertices, engine.out_degrees(), 0.85, 5)),
            Box::new(Bfs::new(g.num_vertices, 2)),
        ]
    };
    let wall = graphm::gridgraph::wall::run_shared(mk(), &engine, 1000);
    let det = run_gridgraph(
        Scheme::Shared,
        mk().into_iter().map(Submission::immediate).collect(),
        &engine,
        &RunnerConfig::new(MemoryProfile::TEST),
    );
    for (w, d) in wall.results.iter().zip(&det.jobs) {
        for (a, b) in w.iter().zip(&d.values) {
            assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                "wall vs deterministic: {a} vs {b}"
            );
        }
    }
}
