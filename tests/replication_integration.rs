//! Hot-standby replication harness.
//!
//! Five families of tests over the frame codec + applier + daemon stack:
//!
//! 1. **Stream bit-identity** — a follower replaying the primary's
//!    shipped frames (including an explicit compaction) through
//!    `ReplicaApplier` ends with byte-identical `CURRENT`, generation
//!    manifests, and delta segments; duplicates are idempotent and gaps
//!    are typed errors.
//! 2. **Chaos matrix** — one clean *replicated* publish (primary
//!    publish → frame ship → follower apply) records every
//!    fsync/rename/send boundary it crosses; each boundary is re-run
//!    with a crash injected exactly there, both sides are abandoned
//!    mid-flight, and after recovery + anti-entropy catch-up the
//!    follower must be bit-identical to the pre- or post-publish
//!    generation — never torn — and identical to the recovered primary.
//! 3. **Promotion and fencing** — a follower promotes through the epoch
//!    fence at `epoch + 1`, the ex-primary rejoins as a follower of the
//!    new primary, and the zombie ex-primary writer's next publish fails
//!    with a typed `EpochFenced`/`LeaseLost`.
//! 4. **Two-daemon failover** — a live primary (`--ingest`, TCP, auth)
//!    streams generations to a live follower daemon; reads on both are
//!    bit-identical, writes to the follower get `not_primary`, TCP
//!    without the shared token gets `unauthorized`, and after the
//!    primary dies the promoted follower serves writes at the bumped
//!    epoch.
//! 5. **Staleness bound** — a follower wedged behind `--max-replica-lag`
//!    rejects reads with a typed `stale_replica` and recovers once the
//!    tail catches up through the jittered reconnect path.
//!
//! `graph::failpoint` global arms are process-wide, so every test that
//! crosses `repl.apply` serializes on [`FAILPOINTS`]: plain tests take a
//! read lock, the global-arm staleness test takes the write lock.

use graphm::graph::delta::read_current_generation;
use graphm::graph::{failpoint, generators, DeltaRecord, GraphError, MemoryProfile};
use graphm::server::{Client, ClientError, Server, ServerConfig};
use graphm::store::{
    decode_frame, encode_frame, read_generation_frame, ApplyOutcome, CompactionPolicy, Convert,
    DeltaWriter, DiskGridSource, LeaseConfig, ReplFrame, ReplicaApplier,
};
use graphm::workloads::{AlgoKind, JobSpec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Serializes access to the process-global failpoint registry: a global
/// arm set by one test must never be consumed by another test's thread.
static FAILPOINTS: RwLock<()> = RwLock::new(());

fn failpoints_shared() -> RwLockReadGuard<'static, ()> {
    FAILPOINTS.read().unwrap_or_else(|e| e.into_inner())
}

fn failpoints_exclusive() -> RwLockWriteGuard<'static, ()> {
    FAILPOINTS.write().unwrap_or_else(|e| e.into_inner())
}

fn store_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-repl-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Seeds a follower: generation 0 replicates by copying the base store
/// (the directory is flat). Must run before either side opens a writer,
/// so no lease or WAL state is cloned.
fn seed_follower(primary: &Path, follower: &Path) {
    std::fs::create_dir_all(follower).unwrap();
    for entry in std::fs::read_dir(primary).unwrap() {
        let e = entry.unwrap();
        std::fs::copy(e.path(), follower.join(e.file_name())).unwrap();
    }
}

/// Every replicated byte in the directory: all files except the node's
/// private lease (`EPOCH`) and WAL (`wal.log`). Two convergent stores
/// must agree on this map exactly — `CURRENT`, generation manifests,
/// delta segments, and base segments included.
fn replicated_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut map = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let e = entry.unwrap();
        let name = e.file_name().to_str().unwrap().to_string();
        if name == "EPOCH" || name == "wal.log" {
            continue;
        }
        map.insert(name, std::fs::read(e.path()).unwrap());
    }
    map
}

/// An edge as a bit-comparable triple (`weight` by its raw bits).
type EdgeBits = (u32, u32, u32);

/// The merged view a reader consumes, in partition-major order.
fn read_merged(dir: &Path) -> (u64, Vec<EdgeBits>) {
    let src = DiskGridSource::open(dir).expect("open store for inspection");
    let mut edges = Vec::new();
    for pid in 0..graphm::core::PartitionSource::num_partitions(&src) {
        edges.extend(
            graphm::core::PartitionSource::load(&src, pid)
                .iter()
                .map(|e| (e.src, e.dst, e.weight.to_bits())),
        );
    }
    (src.generation(), edges)
}

/// A deterministic mutation batch touching all partitions: base edges
/// tombstoned plus fresh inserts, varied by `salt` so successive
/// generations differ.
fn batch(g: &graphm::graph::EdgeList, salt: u32) -> Vec<DeltaRecord> {
    let mut records = Vec::new();
    for e in g.edges.iter().skip(salt as usize).step_by(151).take(5) {
        records.push(DeltaRecord::delete(e.src, e.dst));
    }
    let nv = g.num_vertices;
    for i in 0..25u32 {
        let k = i + salt * 31;
        records.push(DeltaRecord::insert((k * 29) % nv, (k * 83 + 7) % nv, 1.5 + salt as f32));
    }
    records
}

fn stage(writer: &mut DeltaWriter, records: &[DeltaRecord]) {
    for r in records {
        if r.op == graphm::graph::delta::DELTA_OP_DELETE {
            writer.delete(r.src, r.dst).unwrap();
        } else {
            writer.insert(r.src, r.dst, r.weight).unwrap();
        }
    }
}

/// Ships generation `gen` from `dir` through a full wire round-trip
/// (encode → decode), exactly what the daemon's hex transport carries.
fn ship(dir: &Path, gen: u64, epoch: u64) -> ReplFrame {
    let frame = read_generation_frame(dir, gen, epoch).expect("rebuild frame");
    decode_frame(&encode_frame(&frame)).expect("wire round-trip")
}

/// 1. A follower replaying the primary's stream — three delta publishes
///    around an explicit compaction — converges to byte-identical
///    replicated state; resends are idempotent, gaps and generation 0 are
///    typed errors.
#[test]
fn replicated_stream_is_bit_identical_including_compaction() {
    let _guard = failpoints_shared();
    let g = generators::rmat(240, 2000, generators::RmatParams::GRAPH500, 17);
    let p = store_dir("stream-p");
    let f = store_dir("stream-f");
    Convert::grid(3).write(&g, &p).unwrap();
    seed_follower(&p, &f);

    // Primary: gen 1, 2 are delta publishes, gen 3 a compaction, gen 4
    // another delta publish on the folded base.
    let mut w = DeltaWriter::open(&p).unwrap().with_policy(CompactionPolicy::never());
    for salt in 0..2u32 {
        stage(&mut w, &batch(&g, salt));
        assert_eq!(w.publish().unwrap(), u64::from(salt) + 1);
    }
    assert_eq!(w.compact().unwrap(), 3);
    stage(&mut w, &batch(&g, 9));
    assert_eq!(w.publish().unwrap(), 4);

    // Generation 0 never ships as a frame: followers seed by copying.
    assert!(read_generation_frame(&p, 0, w.lease_epoch()).is_err());

    // Follower: apply the stream in order through the wire codec.
    let mut applier = ReplicaApplier::open(&f).unwrap();
    for gen in 1..=4u64 {
        let frame = ship(&p, gen, w.lease_epoch());
        assert_eq!(applier.apply(&frame).unwrap(), ApplyOutcome::Applied(gen));
    }
    assert_eq!(applier.generation(), 4);
    assert_eq!(applier.frames_applied(), 4);
    assert_eq!(applier.primary_epoch(), w.lease_epoch());

    // A resend after a primary crash-recovery republish is harmless.
    let resend = ship(&p, 4, w.lease_epoch());
    assert_eq!(applier.apply(&resend).unwrap(), ApplyOutcome::Duplicate);
    assert_eq!(applier.frames_applied(), 4);

    // A frame beyond have+1 is a typed gap, not a silent skip.
    let gap = ReplFrame { generation: 6, ..resend };
    let err = applier.apply(&gap).expect_err("gap must be typed");
    assert!(format!("{err}").contains("replication gap"), "{err}");

    // Byte-identical replicated state, and identical merged views.
    assert_eq!(replicated_files(&p), replicated_files(&f), "replicated bytes diverge");
    assert_eq!(read_merged(&p), read_merged(&f));

    drop(w);
    drop(applier);
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_dir_all(&f).ok();
}

/// 2. The chaos matrix over one *replicated* publish: primary publish →
///    frame ship → follower apply, with a crash injected at every
///    fsync/rename/send boundary the clean run crosses (both sides'
///    publish boundaries plus `repl.ship` and `repl.apply`). Recovery +
///    catch-up must leave the follower bit-identical to the pre- or
///    post-publish state and equal to the recovered primary; from the
///    primary's WAL sync onward the batch is durable and the direction is
///    pinned forward.
#[test]
fn chaos_matrix_converges_follower_at_every_boundary() {
    let _guard = failpoints_shared();
    let g = generators::rmat(200, 1600, generators::RmatParams::GRAPH500, 41);
    let records = batch(&g, 3);

    // Pre-publish reference: the pristine base store's replicated bytes.
    let pre_dir = store_dir("chaos-pre");
    Convert::grid(2).write(&g, &pre_dir).unwrap();
    let pre_files = replicated_files(&pre_dir);
    let (pre_gen, pre_edges) = read_merged(&pre_dir);
    assert_eq!(pre_gen, 0);
    std::fs::remove_dir_all(&pre_dir).ok();

    // Clean traced run: enumerate every boundary of the replicated
    // publish and capture the post-publish reference bytes.
    let pt = store_dir("chaos-trace-p");
    let ft = store_dir("chaos-trace-f");
    Convert::grid(2).write(&g, &pt).unwrap();
    seed_follower(&pt, &ft);
    let mut w = DeltaWriter::open(&pt).unwrap().with_policy(CompactionPolicy::never());
    let mut a = ReplicaApplier::open(&ft).unwrap();
    stage(&mut w, &records);
    failpoint::reset();
    failpoint::record();
    assert_eq!(w.publish().unwrap(), 1);
    let frame = ship(&pt, 1, w.lease_epoch());
    assert_eq!(a.apply(&frame).unwrap(), ApplyOutcome::Applied(1));
    let trace = failpoint::trace();
    failpoint::reset();
    let post_files = replicated_files(&pt);
    let (_, post_edges) = read_merged(&pt);
    assert_eq!(replicated_files(&ft), post_files, "clean replicated run must be bit-identical");
    drop(w);
    drop(a);
    std::fs::remove_dir_all(&pt).ok();
    std::fs::remove_dir_all(&ft).ok();

    // The replicated path must cross the primary's publish boundaries,
    // the ship/apply boundaries, and the follower's own publish
    // boundaries (the apply path *is* a publish) — losing any of these
    // silently would shrink chaos coverage.
    assert!(trace.len() >= 20, "suspiciously short boundary trace: {trace:?}");
    for required in ["wal.synced", "current.renamed", "repl.ship", "repl.apply"] {
        assert!(trace.iter().any(|p| p == required), "{required} missing from {trace:?}");
    }
    assert_eq!(
        trace.iter().filter(|p| *p == "wal.synced").count(),
        2,
        "expected one primary and one follower WAL sync in {trace:?}"
    );
    let primary_wal_synced = trace.iter().position(|p| p == "wal.synced").unwrap();

    for (i, point) in trace.iter().enumerate() {
        let skip = trace[..i].iter().filter(|p| *p == point).count();
        let p = store_dir(&format!("chaos-p-{i}"));
        let f = store_dir(&format!("chaos-f-{i}"));
        Convert::grid(2).write(&g, &p).unwrap();
        seed_follower(&p, &f);
        let mut w = DeltaWriter::open(&p).unwrap().with_policy(CompactionPolicy::never());
        let mut a = ReplicaApplier::open(&f).unwrap();
        stage(&mut w, &records);
        failpoint::reset();
        failpoint::arm(point, skip);
        let result = (|| -> Result<(), GraphError> {
            w.publish()?;
            let frame = read_generation_frame(&p, 1, w.lease_epoch())?;
            let frame = decode_frame(&encode_frame(&frame))?;
            a.apply(&frame)?;
            Ok(())
        })();
        let err = result.expect_err("armed boundary must abort the replicated publish");
        assert!(failpoint::is_injected(&err), "crossing {i} ({point}): real error {err}");
        failpoint::reset();
        // kill -9 both processes at the boundary: leases and WALs stay
        // exactly as abandoned.
        w.crash();
        a.crash();

        // Recovery: each node reopens its own store (WAL replay inside),
        // then the follower anti-entropy-catches-up over the generation
        // range it missed — the same read_generation_frame path the live
        // tail uses.
        let rec_w = DeltaWriter::open_with(&p, LeaseConfig::force_takeover())
            .expect("primary recovery open")
            .with_policy(CompactionPolicy::never());
        let mut rec_a = ReplicaApplier::open_with(&f, LeaseConfig::force_takeover())
            .expect("follower recovery open");
        let current = rec_w.generation();
        for gen in rec_a.generation() + 1..=current {
            let frame = ship(&p, gen, rec_w.lease_epoch());
            assert_eq!(rec_a.apply(&frame).unwrap(), ApplyOutcome::Applied(gen));
        }

        // Half-written files from the crash must not survive as
        // asymmetric orphans: sweep both sides to the live set.
        rec_w.retire_older_generations().unwrap();
        let (p_gen, p_edges) = read_merged(&p);
        let (f_gen, f_edges) = read_merged(&f);
        assert_eq!((p_gen, &p_edges), (f_gen, &f_edges), "crossing {i} ({point}): divergent");
        let is_pre = p_edges == pre_edges;
        let is_post = p_edges == post_edges;
        assert!(
            is_pre || is_post,
            "crossing {i} ({point}): converged state at generation {p_gen} is neither \
             pre- nor post-publish"
        );
        if i >= primary_wal_synced {
            assert!(is_post, "crossing {i} ({point}): durable batch rolled back");
        }
        // Bit-identical to the reference run, manifest and CURRENT
        // included (the follower never re-publishes crashed partials, so
        // only the primary needed retirement).
        let reference = if is_post { &post_files } else { &pre_files };
        assert_eq!(
            &replicated_files(&p),
            reference,
            "crossing {i} ({point}): primary bytes diverge from reference"
        );
        let f_files = replicated_files(&f);
        for (name, bytes) in reference {
            assert_eq!(
                f_files.get(name),
                Some(bytes),
                "crossing {i} ({point}): follower file {name} diverges"
            );
        }
        drop(rec_w);
        drop(rec_a);
        std::fs::remove_dir_all(&p).ok();
        std::fs::remove_dir_all(&f).ok();
    }
}

/// 3. Promotion through the epoch fence: the follower re-acquires its
///    lease at `epoch + 1` and serves writes; the ex-primary rejoins as a
///    follower of the new primary and converges; the zombie ex-primary
///    writer is fenced with a typed error on its next flip.
#[test]
fn promotion_bumps_epoch_and_fences_the_ex_primary() {
    let _guard = failpoints_shared();
    let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 5);
    let p = store_dir("promote-p");
    let f = store_dir("promote-f");
    Convert::grid(2).write(&g, &p).unwrap();
    seed_follower(&p, &f);

    let mut old_primary = DeltaWriter::open(&p).unwrap().with_policy(CompactionPolicy::never());
    assert_eq!(old_primary.lease_epoch(), 1);
    stage(&mut old_primary, &batch(&g, 0));
    assert_eq!(old_primary.publish().unwrap(), 1);

    let mut applier = ReplicaApplier::open(&f).unwrap();
    applier.apply(&ship(&p, 1, old_primary.lease_epoch())).unwrap();
    assert_eq!(applier.lease_epoch(), 1);

    // Promote: the follower's own lease is fenced and re-acquired one
    // epoch up; the returned writer serves primary duty immediately.
    let mut new_primary =
        applier.promote().expect("promotion").with_policy(CompactionPolicy::never());
    assert_eq!(new_primary.lease_epoch(), 2);
    stage(&mut new_primary, &batch(&g, 1));
    assert_eq!(new_primary.publish().unwrap(), 2);

    // The ex-primary rejoins as a follower of the new primary: its store
    // is bit-identical up to generation 1, so tailing resumes at 2. Its
    // stale lease (the zombie still holds it) is force-fenced the same
    // way a crashed node's would be.
    let mut rejoined = ReplicaApplier::open_with(&p, LeaseConfig::force_takeover()).unwrap();
    assert_eq!(rejoined.generation(), 1);
    rejoined.apply(&ship(&f, 2, new_primary.lease_epoch())).unwrap();
    assert_eq!(replicated_files(&p), replicated_files(&f), "rejoined ex-primary diverges");

    // The zombie ex-primary writer can buffer but never flip CURRENT.
    old_primary.insert(0, 1, 1.0).unwrap();
    let fenced = old_primary.publish().expect_err("fenced ex-primary must not publish");
    assert!(
        matches!(fenced, GraphError::EpochFenced { .. } | GraphError::LeaseLost { .. }),
        "wrong error: {fenced}"
    );

    drop(old_primary);
    drop(new_primary);
    drop(rejoined);
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_dir_all(&f).ok();
}

const NV: u32 = 300;

fn job_spec() -> JobSpec {
    JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters: 8 }
}

fn poll_until<T>(what: &str, deadline: Duration, mut probe: impl FnMut() -> Option<T>) -> T {
    let start = Instant::now();
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// 4. Two live daemons: the follower tails the primary over TCP with the
///    shared-secret handshake, serves bit-identical reads, redirects writes
///    with `not_primary`, and — after the primary dies — promotes through
///    the `promote` verb and serves writes at the bumped epoch.
#[test]
fn follower_daemon_tails_serves_reads_and_promotes() {
    let _guard = failpoints_shared();
    let g = generators::rmat(NV, 2600, generators::RmatParams::GRAPH500, 63);
    let p = store_dir("e2e-p");
    let f = store_dir("e2e-f");
    Convert::grid(3).write(&g, &p).unwrap();
    seed_follower(&p, &f);

    let token = "repl-e2e-secret";
    let mut pconfig = ServerConfig::new(&p);
    pconfig.tcp_addr = Some("127.0.0.1:0".to_string());
    pconfig.profile = MemoryProfile::TEST;
    pconfig.batch_window = Duration::from_millis(5);
    pconfig.enable_ingest = true;
    pconfig.auth_token = Some(token.to_string());
    let primary = Server::start(pconfig).expect("primary starts");
    let paddr = primary.tcp_addr().unwrap().to_string();

    // A follower cannot also hold the ingest lease.
    let mut bad = ServerConfig::new(&f);
    bad.follow = Some(paddr.clone());
    bad.enable_ingest = true;
    assert!(Server::start(bad).is_err(), "follower + ingest must be rejected");

    let mut fconfig = ServerConfig::new(&f);
    fconfig.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-repl-e2e-{}.sock", std::process::id())));
    fconfig.profile = MemoryProfile::TEST;
    fconfig.batch_window = Duration::from_millis(5);
    fconfig.follow = Some(paddr.clone());
    fconfig.auth_token = Some(token.to_string());
    fconfig.max_replica_lag = 64;
    fconfig.repl_backoff = Duration::from_millis(100);
    let follower = Server::start(fconfig).expect("follower starts");
    let fsock = follower.socket_path().unwrap().to_path_buf();

    // Satellite: TCP without the token is a typed `unauthorized`; the
    // connection survives for a retry with the right secret.
    let mut nosy = Client::connect_tcp(paddr.as_str()).unwrap();
    assert!(matches!(nosy.ping(), Err(ClientError::Unauthorized(_))), "unauthenticated ping");
    assert!(matches!(nosy.auth("wrong-token"), Err(ClientError::Unauthorized(_))));
    nosy.auth(token).expect("correct token after a failure");
    nosy.ping().expect("authenticated ping");
    drop(nosy);

    // Ingest three generations on the primary.
    let mut pc = Client::connect_tcp(paddr.as_str()).unwrap();
    pc.auth(token).unwrap();
    for salt in 0..3u32 {
        let ops = batch(&g, salt);
        assert_eq!(pc.ingest(&ops).unwrap(), ops.len());
        let (generation, _) = pc.ingest_commit().unwrap();
        assert_eq!(generation, u64::from(salt) + 1);
    }

    // The follower tails to lag 0 (its unix socket is auth-exempt).
    let mut fc = Client::connect_unix(&fsock).unwrap();
    poll_until("follower catch-up", Duration::from_secs(20), || {
        let repl = fc.repl_status().unwrap();
        (repl.get("generation").and_then(|v| v.as_u64()) == Some(3)).then_some(())
    });
    let health = fc.health().unwrap();
    assert_eq!(health.role, "follower");
    assert_eq!(health.peer, paddr);
    assert_eq!(health.replica_lag_generations, 0);
    assert_eq!(read_current_generation(&f).unwrap(), 3);

    // Satellite: replication ledgers on both sides.
    let pstats = pc.stats().unwrap();
    assert_eq!(pstats.repl_followers, 1, "one live subscriber");
    assert!(pstats.repl_frames_shipped >= 3, "{}", pstats.repl_frames_shipped);
    assert!(pstats.repl_frames_acked >= 3, "{}", pstats.repl_frames_acked);
    let prepl = pc.repl_status().unwrap();
    assert_eq!(prepl.get("role").and_then(|v| v.as_str()), Some("primary"));
    assert_eq!(prepl.get("followers").and_then(|v| v.as_u64()), Some(1));

    // Reads on the follower are bit-identical to the primary's. Each
    // run forces a round; the daemons rotate to the newest published
    // generation between rounds.
    let on_primary = poll_until("primary rotation", Duration::from_secs(20), || {
        let report = pc.run(&job_spec()).expect("job on primary");
        (pc.stats().unwrap().generation == 3).then_some(report)
    });
    let on_follower = poll_until("follower rotation", Duration::from_secs(20), || {
        let report = fc.run(&job_spec()).expect("job on follower");
        (fc.stats().unwrap().generation == 3).then_some(report)
    });
    assert_eq!(replicated_files(&p), replicated_files(&f), "replicated dirs diverge");
    assert_eq!(on_primary.values.len(), on_follower.values.len());
    assert_eq!(
        on_primary.edges_processed, on_follower.edges_processed,
        "primary and follower served different generations"
    );
    for (a, b) in on_primary.values.iter().zip(&on_follower.values) {
        assert_eq!(a.to_bits(), b.to_bits(), "follower read diverges bit-wise");
    }

    // Writes to the follower are redirected with a typed `not_primary`.
    let redirect = fc.ingest(&batch(&g, 7));
    assert!(matches!(redirect, Err(ClientError::NotPrimary(_))), "got {redirect:?}");
    // Promoting a primary is equally typed.
    assert!(pc.promote().is_err(), "primary must refuse promote");

    // The primary dies; the operator promotes the follower.
    drop(pc);
    primary.shutdown();
    let epoch = fc.promote().expect("promotion");
    assert_eq!(epoch, 2, "epoch fence bumps the follower's lease");
    let health = fc.health().unwrap();
    assert_eq!(health.role, "primary");
    assert_eq!(health.lease_epoch, 2);
    assert!(health.lease_held);

    // The promoted node owns the write path at the new epoch.
    let ops = batch(&g, 11);
    fc.ingest(&ops).unwrap();
    let (generation, _) = fc.ingest_commit().expect("ingest on promoted follower");
    assert_eq!(generation, 4);
    fc.run(&job_spec()).expect("job after promotion");

    fc.shutdown_server().unwrap();
    follower.join();
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_dir_all(&f).ok();
    std::fs::remove_file(&fsock).ok();
}

/// 5. The staleness bound: a follower wedged mid-tail (global
///    `repl.apply` arm + a long reconnect backoff) rejects reads beyond
///    `--max-replica-lag` with a typed `stale_replica`, surfaces the retry
///    in `repl_status.reconnects`, and recovers through the jittered
///    reconnect without operator help.
#[test]
fn stale_follower_rejects_reads_until_it_catches_up() {
    let _guard = failpoints_exclusive();
    let g = generators::rmat(NV, 2600, generators::RmatParams::GRAPH500, 12);
    let p = store_dir("stale-p");
    let f = store_dir("stale-f");
    Convert::grid(3).write(&g, &p).unwrap();
    seed_follower(&p, &f);

    let mut pconfig = ServerConfig::new(&p);
    pconfig.tcp_addr = Some("127.0.0.1:0".to_string());
    pconfig.profile = MemoryProfile::TEST;
    pconfig.batch_window = Duration::from_millis(5);
    pconfig.enable_ingest = true;
    let primary = Server::start(pconfig).expect("primary starts");
    let paddr = primary.tcp_addr().unwrap().to_string();

    // Two generations land before the follower ever connects, so its
    // first tail session sees lag 2 — beyond the bound of 1.
    let mut pc = Client::connect_tcp(paddr.as_str()).unwrap();
    for salt in 0..2u32 {
        let ops = batch(&g, salt);
        pc.ingest(&ops).unwrap();
        pc.ingest_commit().unwrap();
    }

    // The first apply dies on the armed failpoint (consumed by that one
    // crossing), forcing a full reconnect backoff window during which
    // the follower is observably stale.
    failpoint::reset_global();
    failpoint::arm_global("repl.apply", 0);
    let mut fconfig = ServerConfig::new(&f);
    fconfig.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-repl-stale-{}.sock", std::process::id())));
    fconfig.profile = MemoryProfile::TEST;
    fconfig.batch_window = Duration::from_millis(5);
    fconfig.follow = Some(paddr.clone());
    fconfig.max_replica_lag = 1;
    fconfig.repl_backoff = Duration::from_secs(3);
    let follower = Server::start(fconfig).expect("follower starts");
    let fsock = follower.socket_path().unwrap().to_path_buf();

    let mut fc = Client::connect_unix(&fsock).unwrap();
    poll_until("wedged tail to enter backoff", Duration::from_secs(20), || {
        let repl = fc.repl_status().unwrap();
        (repl.get("reconnects").and_then(|v| v.as_u64()) >= Some(1)).then_some(())
    });
    let health = fc.health().unwrap();
    assert_eq!(health.role, "follower");
    assert_eq!(health.replica_lag_generations, 2);

    // Beyond the bound: reads are rejected with a typed error naming it.
    let stale = fc.submit(&job_spec());
    match stale {
        Err(ClientError::StaleReplica(m)) => {
            assert!(m.contains("2 generations"), "unhelpful staleness message: {m}")
        }
        other => panic!("expected stale_replica, got {other:?}"),
    }

    // The armed crossing was consumed, so the jittered reconnect heals
    // the tail; once lag is back inside the bound, reads flow again.
    poll_until("tail recovery after backoff", Duration::from_secs(30), || {
        let repl = fc.repl_status().unwrap();
        (repl.get("generation").and_then(|v| v.as_u64()) == Some(2)).then_some(())
    });
    failpoint::reset_global();
    assert_eq!(fc.health().unwrap().replica_lag_generations, 0);
    fc.run(&job_spec()).expect("read after catch-up");

    fc.shutdown_server().unwrap();
    follower.join();
    primary.shutdown();
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_dir_all(&f).ok();
    std::fs::remove_file(&fsock).ok();
}
