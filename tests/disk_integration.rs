//! Disk-resident store integration: `DiskGridSource` must be a *bit-exact*
//! drop-in for the in-memory `GridSource` — same JobReports for the paper
//! mix (PageRank/WCC/BFS/SSSP) under all three execution schemes — and the
//! shard store must agree with `ChiSource` the same way.

use graphm::core::{run_scheme, JobReport, PartitionSource, RunnerConfig, Scheme};
use graphm::graph::{generators, MemoryProfile};
use graphm::graphchi::{run_graphchi, run_graphchi_disk, GraphChiEngine};
use graphm::gridgraph::{run_gridgraph_disk, DiskGridSource, GridGraphEngine, GridSource};
use graphm::store::Convert;
use graphm::workloads::{immediate_arrivals, AlgoKind, Workbench, WorkbenchBackend};

fn store_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-disk-integration-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn assert_job_reports_identical(mem: &[JobReport], disk: &[JobReport], ctx: &str) {
    assert_eq!(mem.len(), disk.len(), "{ctx}: job counts");
    for (a, b) in mem.iter().zip(disk) {
        assert_eq!(a.id, b.id, "{ctx}: {}", a.name);
        assert_eq!(a.name, b.name, "{ctx}");
        assert_eq!(a.iterations, b.iterations, "{ctx}: {}", a.name);
        assert_eq!(a.instructions, b.instructions, "{ctx}: {}", a.name);
        assert_eq!(a.edges_processed, b.edges_processed, "{ctx}: {}", a.name);
        assert_eq!(a.submit_ns.to_bits(), b.submit_ns.to_bits(), "{ctx}: {}", a.name);
        assert_eq!(a.finish_ns.to_bits(), b.finish_ns.to_bits(), "{ctx}: {}", a.name);
        assert_eq!(a.values.len(), b.values.len(), "{ctx}: {}", a.name);
        for (i, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {} vertex {i}: {x} vs {y}", a.name);
        }
    }
}

#[test]
fn disk_grid_source_matches_in_memory_for_paper_mix() {
    // LiveJ-like graph at test scale, paper mix covering all four algos.
    let g = generators::rmat(600, 5200, generators::RmatParams::GRAPH500, 33);
    let wb = Workbench::from_graph(g.clone(), 4, MemoryProfile::TEST);
    let specs = wb.paper_mix(8, 11);
    assert!(
        [AlgoKind::PageRank, AlgoKind::Wcc, AlgoKind::Bfs, AlgoKind::Sssp]
            .iter()
            .all(|k| specs.iter().any(|s| s.kind == *k)),
        "paper mix must rotate through all four algorithms"
    );

    let dir = store_dir("grid");
    Convert::grid(4).write(&g, &dir).unwrap();
    let disk = DiskGridSource::open(&dir).unwrap();
    let mem = GridSource::new(GridGraphEngine::convert(&g, 4).0.grid());

    // Source-level agreement first: order, bytes, vertex count.
    assert_eq!(disk.order(), mem.order());
    assert_eq!(disk.num_vertices(), mem.num_vertices());
    assert_eq!(disk.graph_bytes(), mem.graph_bytes());
    for pid in 0..mem.num_partitions() {
        assert_eq!(disk.partition_bytes(pid), mem.partition_bytes(pid), "partition {pid}");
    }

    let cfg = wb.runner_config();
    let arr = immediate_arrivals(specs.len());
    for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
        let r_mem = run_scheme(scheme, wb.submissions(&specs, &arr), &mem, &cfg);
        let r_disk = run_gridgraph_disk(scheme, wb.submissions(&specs, &arr), &disk, &cfg);
        let ctx = format!("scheme {:?}", scheme);
        assert_job_reports_identical(&r_mem.jobs, &r_disk.jobs, &ctx);
        assert_eq!(r_mem.makespan_ns.to_bits(), r_disk.makespan_ns.to_bits(), "{ctx}: makespan");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workbench_from_disk_matches_in_memory_workbench() {
    let g = generators::rmat(500, 4000, generators::RmatParams::SOCIAL, 17);
    let wb_mem = Workbench::from_graph(g.clone(), 4, MemoryProfile::TEST);
    let dir = store_dir("workbench");
    Convert::grid(4).write(&g, &dir).unwrap();
    let wb_disk = Workbench::from_disk(&dir, MemoryProfile::TEST).unwrap();

    assert!(matches!(wb_disk.backend, WorkbenchBackend::Disk(_)));
    assert_eq!(wb_disk.num_vertices(), 500);
    assert_eq!(wb_disk.structure_bytes, wb_mem.structure_bytes);
    assert_eq!(*wb_disk.out_degrees, *wb_mem.out_degrees);

    let specs = wb_mem.paper_mix(6, 3);
    let (s_mem, c_mem, m_mem) = wb_mem.run_all_schemes(&specs);
    let (s_disk, c_disk, m_disk) = wb_disk.run_all_schemes(&specs);
    assert_job_reports_identical(&s_mem.jobs, &s_disk.jobs, "S");
    assert_job_reports_identical(&c_mem.jobs, &c_disk.jobs, "C");
    assert_job_reports_identical(&m_mem.jobs, &m_disk.jobs, "M");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_shard_source_matches_in_memory_chi() {
    let g = generators::rmat(400, 3000, generators::RmatParams::GRAPH500, 23);
    let (engine, _) = GraphChiEngine::convert(&g, 4);
    let dir = store_dir("shards");
    GraphChiEngine::convert_to_disk(&g, 4, &dir).unwrap();
    let disk = GraphChiEngine::open_disk(&dir).unwrap();

    let wb = Workbench::from_graph(g.clone(), 4, MemoryProfile::TEST);
    let specs = wb.paper_mix(6, 5);
    let cfg = RunnerConfig::new(MemoryProfile::TEST);
    let arr = immediate_arrivals(specs.len());
    for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
        let r_mem = run_graphchi(scheme, wb.submissions(&specs, &arr), &engine, &cfg);
        let r_disk = run_graphchi_disk(scheme, wb.submissions(&specs, &arr), &disk, &cfg);
        assert_job_reports_identical(&r_mem.jobs, &r_disk.jobs, &format!("chi {:?}", scheme));
    }
    std::fs::remove_dir_all(&dir).ok();
}
