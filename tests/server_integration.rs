//! End-to-end daemon integration: a `graphm-server` over a disk-resident
//! store must give concurrently connected socket clients *exactly* what an
//! in-process `Workbench` run of the same job mix gives — bit-identical
//! `JobReport`s — while actually sharing partition passes across the
//! socket-submitted jobs (fewer total loads than jobs x partitions).

use graphm::core::{JobReport, Scheme};
use graphm::graph::{generators, MemoryProfile};
use graphm::server::{Client, ExecutionMode, JobState, Server, ServerConfig};
use graphm::store::Convert;
use graphm::workloads::{immediate_arrivals, AlgoKind, JobSpec, MixConfig, Workbench};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn store_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("graphm-server-integration-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn test_server(dir: &std::path::Path, name: &str, batch_ms: u64) -> Server {
    let mut config = ServerConfig::new(dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-{name}-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(batch_ms);
    Server::start(config).expect("server starts")
}

/// The headline test: 8 concurrent client connections, one job each,
/// submitted into one batching window; reports must be bit-identical to
/// the same mix run in-process, and the sharing scheduler must have
/// merged partition passes across the socket-submitted jobs.
#[test]
fn eight_concurrent_clients_match_in_process_run_bit_for_bit() {
    let g = generators::rmat(600, 5200, generators::RmatParams::GRAPH500, 33);
    let dir = store_dir("concurrent");
    Convert::grid(4).write(&g, &dir).unwrap();

    // Capped iteration budgets keep total sweeps well below the job
    // count, so the sharing criterion (loads < jobs x partitions) has
    // teeth; the mix still rotates through all four paper algorithms.
    let wb = Workbench::from_disk(&dir, MemoryProfile::TEST).unwrap();
    let mix = MixConfig {
        count: 8,
        kinds: AlgoKind::PAPER_MIX.to_vec(),
        seed: 11,
        pr_max_iters: 4,
        wcc_max_iters: 4,
    };
    let specs = graphm::workloads::generate_mix(wb.num_vertices(), &mix);

    // A generous batching window: all 8 submissions (sent concurrently,
    // right after startup) land in one admission, exactly like the
    // in-process run's immediate arrivals.
    let server = test_server(&dir, "concurrent", 1500);
    let socket = server.socket_path().unwrap().to_path_buf();

    let barrier = Arc::new(Barrier::new(specs.len()));
    let mut handles = Vec::new();
    for (i, spec) in specs.iter().copied().enumerate() {
        let socket = socket.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_unix(&socket).expect("connect");
            barrier.wait();
            let id = client.submit(&spec).expect("submit");
            let report = client.wait(id).expect("wait");
            (i, id, report)
        }));
    }
    let mut by_server_id: Vec<Option<(usize, JobReport)>> = vec![None; specs.len()];
    for h in handles {
        let (spec_idx, id, report) = h.join().expect("client thread");
        assert_eq!(report.id, id);
        assert!(by_server_id[id].is_none(), "job ids are unique");
        by_server_id[id] = Some((spec_idx, report));
    }

    // Replay the same mix in-process, ordered the way the daemon admitted
    // it (ids are assigned in arrival order), with immediate arrivals.
    let ordered_specs: Vec<JobSpec> =
        by_server_id.iter().map(|e| specs[e.as_ref().unwrap().0]).collect();
    let arr = immediate_arrivals(ordered_specs.len());
    let expected = wb.run(Scheme::Shared, &ordered_specs, &arr);

    for (id, entry) in by_server_id.iter().enumerate() {
        let (_, served) = entry.as_ref().unwrap();
        let want = &expected.jobs[id];
        assert_eq!(served.name, want.name, "job {id}");
        assert_eq!(served.iterations, want.iterations, "job {id}");
        assert_eq!(served.instructions, want.instructions, "job {id}");
        assert_eq!(served.edges_processed, want.edges_processed, "job {id}");
        assert_eq!(served.submit_ns.to_bits(), want.submit_ns.to_bits(), "job {id}");
        assert_eq!(served.finish_ns.to_bits(), want.finish_ns.to_bits(), "job {id}");
        assert_eq!(served.clock.compute_ns.to_bits(), want.clock.compute_ns.to_bits(), "job {id}");
        assert_eq!(served.clock.disk_ns.to_bits(), want.clock.disk_ns.to_bits(), "job {id}");
        assert_eq!(served.clock.sync_ns.to_bits(), want.clock.sync_ns.to_bits(), "job {id}");
        assert_eq!(served.values.len(), want.values.len(), "job {id}");
        for (v, (a, b)) in served.values.iter().zip(&want.values).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "job {id} ({}) vertex {v}", served.name);
        }
    }

    // Sharing engaged across socket-submitted jobs: the daemon's loads
    // match the in-process Shared run exactly and stay below what
    // per-job loading (jobs x partitions, even at one pass per job)
    // would cost.
    let stats = server.stats();
    let expected_loads = expected.metrics.get(graphm::cachesim::keys::PARTITION_LOADS) as u64;
    assert_eq!(stats.partition_loads, expected_loads, "daemon loads match in-process run");
    let jobs_x_partitions = (specs.len() * stats.num_partitions as usize) as u64;
    assert!(
        stats.partition_loads < jobs_x_partitions,
        "sharing must engage: {} loads vs jobs x partitions = {}",
        stats.partition_loads,
        jobs_x_partitions
    );
    assert_eq!(stats.jobs_submitted, 8);
    assert_eq!(stats.jobs_completed, 8);
    assert_eq!(stats.num_vertices, 600);
    assert!(stats.rounds >= 1);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Wallclock mode: real threaded sweeps with partition prefetch must
/// produce **algorithmically identical** reports to deterministic mode —
/// same names, iteration counts, edges processed, and vertex values
/// (bit-for-bit) — while timing fields are free to differ; the prefetcher
/// must record hits on the disk-resident store.
#[test]
fn wallclock_mode_matches_deterministic_results_with_prefetch_hits() {
    let g = generators::rmat(600, 5200, generators::RmatParams::GRAPH500, 33);
    let dir = store_dir("wallclock");
    Convert::grid(4).write(&g, &dir).unwrap();

    // Same shape as the deterministic headline test: capped iteration
    // budgets keep total sweeps well below the job count so the sharing
    // criterion (loads < jobs x partitions) has teeth.
    let wb = Workbench::from_disk(&dir, MemoryProfile::TEST).unwrap();
    let mix = MixConfig {
        count: 8,
        kinds: AlgoKind::PAPER_MIX.to_vec(),
        seed: 19,
        pr_max_iters: 4,
        wcc_max_iters: 4,
    };
    let specs = graphm::workloads::generate_mix(wb.num_vertices(), &mix);

    let mut config = ServerConfig::new(&dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-wallclock-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    // Submissions below come sequentially from one client; a generous
    // window lands them in one threaded batch (ids stay in submit order).
    // The bit-exact comparison depends on that: a split batch changes the
    // co-scheduled job set and hence the Formula-5 loading order, which
    // legitimately perturbs f64 accumulation order. The rounds == 1
    // assert below turns a scheduler stall into a clear diagnostic.
    config.batch_window = Duration::from_millis(2000);
    config.mode = ExecutionMode::Wallclock;
    let server = Server::start(config).expect("wallclock server starts");
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let ids: Vec<_> = specs.iter().map(|s| client.submit(s).expect("submit")).collect();
    let served: Vec<JobReport> = ids.iter().map(|&id| client.wait(id).expect("wait")).collect();
    assert_eq!(
        server.stats().rounds,
        1,
        "all submissions must land in one batch for the bit-exact comparison \
         (a machine stall split the batch window; rerun)"
    );

    // Deterministic reference for the same specs in the same order.
    let expected = wb.run(Scheme::Shared, &specs, &immediate_arrivals(specs.len()));

    for (id, (got, want)) in served.iter().zip(&expected.jobs).enumerate() {
        assert_eq!(got.name, want.name, "job {id}");
        assert_eq!(got.iterations, want.iterations, "job {id} ({})", got.name);
        assert_eq!(got.edges_processed, want.edges_processed, "job {id} ({})", got.name);
        assert_eq!(got.values.len(), want.values.len(), "job {id}");
        for (v, (a, b)) in got.values.iter().zip(&want.values).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "job {id} ({}) vertex {v}", got.name);
        }
        // Wallclock timing is real: non-negative wall nanoseconds, and
        // the simulated instruction counter stays unused.
        assert!(got.finish_ns >= got.submit_ns, "job {id}");
        assert_eq!(got.instructions, 0, "job {id} carries no simulated instructions");
    }

    let stats = server.stats();
    assert_eq!(stats.jobs_completed, specs.len() as u64);
    let jobs_x_partitions = (specs.len() * stats.num_partitions as usize) as u64;
    assert!(
        stats.partition_loads < jobs_x_partitions,
        "threaded sharing must engage: {} loads vs jobs x partitions = {}",
        stats.partition_loads,
        jobs_x_partitions
    );
    assert!(stats.prefetch_issued > 0, "prefetcher issued no hints");
    assert!(
        stats.prefetch_hits > 0,
        "prefetcher never ran ahead of a load (issued {})",
        stats.prefetch_issued
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The TCP listener speaks the same protocol.
#[test]
fn tcp_listener_serves_jobs() {
    let g = generators::rmat(300, 2400, generators::RmatParams::GRAPH500, 5);
    let dir = store_dir("tcp");
    Convert::grid(4).write(&g, &dir).unwrap();

    let mut config = ServerConfig::new(&dir);
    config.tcp_addr = Some("127.0.0.1:0".to_string());
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(5);
    let server = Server::start(config).unwrap();
    let addr = server.tcp_addr().unwrap();

    let mut client = Client::connect_tcp(addr).unwrap();
    client.ping().unwrap();
    let spec = JobSpec { kind: AlgoKind::Bfs, damping: 0.85, root: 3, max_iters: 30 };
    let report = client.run(&spec).unwrap();
    assert_eq!(report.name, "BFS");
    assert_eq!(report.values.len(), 300);
    // BFS levels: the root is 0, unreached vertices serialize as +inf and
    // must survive the wire.
    assert_eq!(report.values[3], 0.0);
    assert!(report.values.iter().all(|v| v.is_infinite() || *v >= 0.0));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Lifecycle and error behavior over one connection.
#[test]
fn status_lifecycle_and_errors() {
    let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 9);
    let dir = store_dir("lifecycle");
    Convert::grid(2).write(&g, &dir).unwrap();
    let server = test_server(&dir, "lifecycle", 5);
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    // Unknown job.
    assert!(matches!(
        client.status(99),
        Err(graphm::server::ClientError::Server(ref m)) if m.contains("unknown job")
    ));
    // Out-of-range root is rejected at submit.
    let bad = JobSpec { kind: AlgoKind::Bfs, damping: 0.85, root: 4_000, max_iters: 5 };
    assert!(client.submit(&bad).is_err());

    // Normal lifecycle: submitted -> (queued|running) -> done.
    let spec = JobSpec { kind: AlgoKind::Wcc, damping: 0.85, root: 0, max_iters: 6 };
    let id = client.submit(&spec).unwrap();
    let early = client.status(id).unwrap();
    assert!(matches!(early, JobState::Queued | JobState::Running | JobState::Done));
    let report = client.wait(id).unwrap();
    assert_eq!(report.name, "WCC");
    assert_eq!(client.status(id).unwrap(), JobState::Done);
    // Reports stay available for repeated waits.
    let again = client.wait(id).unwrap();
    assert_eq!(again.values, report.values);

    // The daemon keeps serving rounds: a second batch after idle.
    let id2 = client.submit(&spec).unwrap();
    assert!(id2 > id);
    let r2 = client.wait(id2).unwrap();
    assert_eq!(r2.values, report.values, "same spec, same results, later round");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Shutdown drains queued jobs, answers waiting clients, then stops
/// accepting; the socket file is removed.
#[test]
fn shutdown_drains_and_cleans_up() {
    let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 21);
    let dir = store_dir("shutdown");
    Convert::grid(2).write(&g, &dir).unwrap();
    let server = test_server(&dir, "shutdown", 400);
    let socket = server.socket_path().unwrap().to_path_buf();

    let mut submitter = Client::connect_unix(&socket).unwrap();
    let spec = JobSpec { kind: AlgoKind::PageRank, damping: 0.5, root: 0, max_iters: 4 };
    let id = submitter.submit(&spec).unwrap();

    // Ask for shutdown from a second connection while the job is queued
    // (the 400 ms batch window is still open).
    let mut other = Client::connect_unix(&socket).unwrap();
    other.shutdown_server().unwrap();

    // The queued job still completes and the waiter gets its report.
    let report = submitter.wait(id).unwrap();
    assert_eq!(report.name, "PageRank");

    server.shutdown();
    assert!(!socket.exists(), "socket file removed on shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// Finished-report retention is bounded: past `max_done_reports`, the
/// oldest reports are evicted and later queries say "unknown job".
#[test]
fn done_report_retention_is_bounded() {
    let g = generators::rmat(150, 1000, generators::RmatParams::GRAPH500, 3);
    let dir = store_dir("retention");
    Convert::grid(2).write(&g, &dir).unwrap();
    let mut config = ServerConfig::new(&dir);
    config.socket_path =
        Some(std::env::temp_dir().join(format!("graphm-retention-{}.sock", std::process::id())));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(5);
    config.max_done_reports = 2;
    let server = Server::start(config).unwrap();
    let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();

    let spec = JobSpec { kind: AlgoKind::Wcc, damping: 0.85, root: 0, max_iters: 3 };
    let ids: Vec<_> = (0..4)
        .map(|_| {
            let id = client.submit(&spec).unwrap();
            client.wait(id).unwrap();
            id
        })
        .collect();
    // The two newest reports survive; the two oldest were evicted.
    assert_eq!(client.status(ids[3]).unwrap(), JobState::Done);
    assert_eq!(client.status(ids[2]).unwrap(), JobState::Done);
    for &old in &ids[..2] {
        assert!(
            matches!(client.status(old), Err(graphm::server::ClientError::Server(ref m))
                if m.contains("unknown job")),
            "job {old} should have been evicted"
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
